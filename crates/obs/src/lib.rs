//! # hbc-obs — metrics and trace substrate
//!
//! Dependency-free observability primitives for the serving stack, cheap
//! enough to stay compiled in and enabled in release builds:
//!
//! * [`Counter`] — a monotonic event count;
//! * [`Gauge`] — a point-in-time level (sessions live, bytes buffered);
//! * [`Histogram`] — a log2-bucketed latency/size distribution with exact
//!   bucket-resolution quantile readout ([`Histogram::quantile`]) and a
//!   **deterministic merge**: merging per-shard histograms yields the same
//!   result for any split of the observations and any merge order, so
//!   per-session stage timings can be aggregated fleet-wide without losing
//!   reproducibility;
//! * [`TraceRing`] — a fixed-capacity ring of typed [`TraceEvent`]s with a
//!   monotonic tick, for post-mortem timelines (who detached, when the
//!   shedder fired, in what order) where counters alone lose causality;
//! * [`MetricsSnapshot`] — a named bag of the above rendered as
//!   Prometheus-style text exposition ([`MetricsSnapshot::to_prometheus`])
//!   or a JSON document ([`MetricsSnapshot::to_json`]).
//!
//! All record paths are allocation-free in steady state (`tests/obs_alloc.rs`
//! in the workspace root gates this with a counting allocator); the
//! exposition paths allocate and are meant for scrape/shutdown time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `b >= 1`
/// holds values in `[2^(b-1), 2^b - 1]` (the final bucket saturates at
/// `u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A point-in-time level; may go up and down.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(0.0)
    }

    /// Sets the level.
    #[inline]
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&mut self, delta: f64) {
        self.0 += delta;
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> f64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// A log2-bucketed histogram over `u64` observations (latencies in
/// micro/nanoseconds, sizes in bytes — the unit is the caller's naming
/// convention).
///
/// Recording is O(1), allocation-free and branch-light: the bucket index is
/// derived from the leading-zero count. Quantiles are exact at bucket
/// resolution — [`Histogram::quantile`] returns the upper bound of the
/// bucket containing the requested rank (clamped to the observed maximum),
/// so the true order statistic is always `<=` the reported value and lies
/// in the same power-of-two bucket.
///
/// [`Histogram::merge`] adds bucket counts element-wise, which is
/// commutative and associative: any partition of an observation stream into
/// per-shard histograms merges back to the exact histogram of the whole
/// stream, regardless of split points or merge order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of a bucket (the value [`Histogram::quantile`]
    /// reports when the rank falls in it).
    #[inline]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            64.. => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Inclusive lower bound of a bucket.
    #[inline]
    pub fn bucket_lower_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            b => 1u64 << (b - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Raw bucket counts (index via [`Histogram::bucket_index`]).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// The value at quantile `q` in `[0, 1]`, exact at bucket resolution:
    /// the upper bound of the bucket holding the rank-`ceil(q·count)`
    /// observation, clamped to the observed maximum. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(b).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Convenience: p50 (0 when empty).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50).unwrap_or(0)
    }

    /// Convenience: p90 (0 when empty).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90).unwrap_or(0)
    }

    /// Convenience: p99 (0 when empty).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99).unwrap_or(0)
    }

    /// Merges another histogram into this one. Element-wise bucket addition
    /// is commutative and associative, so the merged result is independent
    /// of how the underlying observations were split and of merge order.
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

/// A typed event on the gateway timeline. All variants are `Copy` so
/// recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A session completed its handshake and entered calibration.
    SessionOpen {
        /// Wire-level session id.
        session: u32,
        /// Patient/record id supplied in the handshake.
        patient: u32,
    },
    /// A session drained and closed cleanly (final report sent).
    SessionClose {
        /// Wire-level session id.
        session: u32,
    },
    /// A session was evicted (idle timeout or overflow policy).
    SessionEvict {
        /// Wire-level session id.
        session: u32,
    },
    /// A session's connection died; its state was parked for resume.
    SessionDetach {
        /// Wire-level session id.
        session: u32,
    },
    /// A parked session re-attached via `ResumeSession`.
    SessionResume {
        /// Wire-level session id.
        session: u32,
    },
    /// A parked session's resume window lapsed; its state was dropped.
    SessionExpire {
        /// Wire-level session id.
        session: u32,
    },
    /// A session was rebuilt from the durable ingest log at startup.
    SessionRecover {
        /// Wire-level session id.
        session: u32,
    },
    /// The memory-budget shedder dropped buffered samples from a session.
    Shed {
        /// Wire-level session id.
        session: u32,
        /// Samples dropped in this pass.
        samples: u32,
    },
    /// Admission control answered a handshake with `Busy`.
    Busy {
        /// Hinted retry pause, in milliseconds.
        retry_after_ms: u32,
    },
    /// Admission control denied a request outright.
    Deny,
    /// A connection was reaped at the handshake deadline.
    ReapHandshake,
    /// A connection was reaped by the minimum-progress check.
    ReapStalled,
    /// A record was appended to the durable ingest log.
    WalAppend {
        /// Encoded record size in bytes.
        bytes: u32,
    },
    /// An append to the durable ingest log failed.
    WalError,
    /// The classification pipeline was hot-swapped at a beat boundary.
    HotSwap {
        /// Live sessions migrated to the new image.
        sessions: u32,
    },
    /// A reactor sweep exceeded the watchdog budget.
    WatchdogStall {
        /// Duration of the offending sweep, in microseconds.
        micros: u64,
    },
}

impl TraceEvent {
    /// Short stable name of the event kind (for filtering and JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::SessionOpen { .. } => "session_open",
            TraceEvent::SessionClose { .. } => "session_close",
            TraceEvent::SessionEvict { .. } => "session_evict",
            TraceEvent::SessionDetach { .. } => "session_detach",
            TraceEvent::SessionResume { .. } => "session_resume",
            TraceEvent::SessionExpire { .. } => "session_expire",
            TraceEvent::SessionRecover { .. } => "session_recover",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::Busy { .. } => "busy",
            TraceEvent::Deny => "deny",
            TraceEvent::ReapHandshake => "reap_handshake",
            TraceEvent::ReapStalled => "reap_stalled",
            TraceEvent::WalAppend { .. } => "wal_append",
            TraceEvent::WalError => "wal_error",
            TraceEvent::HotSwap { .. } => "hot_swap",
            TraceEvent::WatchdogStall { .. } => "watchdog_stall",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::SessionOpen { session, patient } => {
                write!(f, "session_open session={session} patient={patient}")
            }
            TraceEvent::SessionClose { session } => write!(f, "session_close session={session}"),
            TraceEvent::SessionEvict { session } => write!(f, "session_evict session={session}"),
            TraceEvent::SessionDetach { session } => write!(f, "session_detach session={session}"),
            TraceEvent::SessionResume { session } => write!(f, "session_resume session={session}"),
            TraceEvent::SessionExpire { session } => write!(f, "session_expire session={session}"),
            TraceEvent::SessionRecover { session } => {
                write!(f, "session_recover session={session}")
            }
            TraceEvent::Shed { session, samples } => {
                write!(f, "shed session={session} samples={samples}")
            }
            TraceEvent::Busy { retry_after_ms } => {
                write!(f, "busy retry_after_ms={retry_after_ms}")
            }
            TraceEvent::Deny => write!(f, "deny"),
            TraceEvent::ReapHandshake => write!(f, "reap_handshake"),
            TraceEvent::ReapStalled => write!(f, "reap_stalled"),
            TraceEvent::WalAppend { bytes } => write!(f, "wal_append bytes={bytes}"),
            TraceEvent::WalError => write!(f, "wal_error"),
            TraceEvent::HotSwap { sessions } => write!(f, "hot_swap sessions={sessions}"),
            TraceEvent::WatchdogStall { micros } => {
                write!(f, "watchdog_stall micros={micros}")
            }
        }
    }
}

/// A trace event stamped with its position on the ring's monotonic clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic tick: strictly increasing across all events pushed to one
    /// ring, so dumps totally order the timeline even across wraps.
    pub tick: u64,
    /// The event.
    pub event: TraceEvent,
}

/// A fixed-capacity ring of [`TraceRecord`]s. Pushing overwrites the oldest
/// record once full and never allocates after construction.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<TraceRecord>,
    head: usize,
    tick: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            buf: Vec::with_capacity(capacity.max(1)),
            head: 0,
            tick: 0,
        }
    }

    /// Records an event, stamping it with the next tick. O(1),
    /// allocation-free (the buffer was preallocated at construction).
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        self.tick += 1;
        let rec = TraceRecord {
            tick: self.tick,
            event,
        };
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.buf.len();
        }
    }

    /// Maximum number of records retained.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Total events ever pushed (equals the tick of the newest record).
    pub fn recorded(&self) -> u64 {
        self.tick
    }

    /// Events lost to overwrites.
    pub fn dropped(&self) -> u64 {
        self.tick - self.buf.len() as u64
    }

    /// The retained timeline, oldest first (ticks strictly increasing).
    pub fn dump(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

// ---------------------------------------------------------------------------
// Snapshot + exposition
// ---------------------------------------------------------------------------

/// A named metric value inside a [`MetricsSnapshot`].
///
/// The histogram variant inlines the full 65-bucket state (~0.5 KiB):
/// snapshots are built once per scrape over a few dozen metrics, so the
/// size skew is irrelevant and keeping the state inline keeps
/// [`MetricsSnapshot::histogram`] a plain borrow.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Full histogram state.
    Histogram(Histogram),
}

/// One named metric with its help text.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Prometheus-style metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// One-line description emitted as `# HELP`.
    pub help: String,
    /// The reading.
    pub value: MetricValue,
}

/// A point-in-time bag of named metrics, renderable as Prometheus text
/// exposition or JSON. Built by the process under observation (e.g.
/// `Gateway::metrics_snapshot`), consumed by scrapers and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a counter reading.
    pub fn push_counter(&mut self, name: &str, help: &str, value: u64) {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: MetricValue::Counter(value),
        });
    }

    /// Appends a gauge reading.
    pub fn push_gauge(&mut self, name: &str, help: &str, value: f64) {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: MetricValue::Gauge(value),
        });
    }

    /// Appends a histogram (cloned — snapshots own their data).
    pub fn push_histogram(&mut self, name: &str, help: &str, hist: &Histogram) {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: MetricValue::Histogram(hist.clone()),
        });
    }

    /// All metrics in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// Convenience: counter reading by name (`None` if absent or not a
    /// counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: gauge reading by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, cumulative
    /// `_bucket{le="..."}` series plus `_sum` / `_count` for histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {} counter\n{} {}\n", m.name, m.name, v));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {} gauge\n{} {}\n", m.name, m.name, v));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {} histogram\n", m.name));
                    let last = h.buckets().iter().rposition(|&n| n > 0).unwrap_or(0);
                    let mut cum = 0u64;
                    for (b, &n) in h.buckets().iter().enumerate().take(last + 1) {
                        cum += n;
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {}\n",
                            m.name,
                            Histogram::bucket_upper_bound(b),
                            cum
                        ));
                    }
                    out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", m.name, h.count()));
                    out.push_str(&format!("{}_sum {}\n", m.name, h.sum()));
                    out.push_str(&format!("{}_count {}\n", m.name, h.count()));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object keyed by metric name.
    /// Histograms carry count/sum/min/max, p50/p90/p99 and the non-empty
    /// buckets as `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", m.name));
            match &m.value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => {
                    if v.is_finite() {
                        out.push_str(&v.to_string());
                    } else {
                        out.push_str("null");
                    }
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0),
                        h.p50(),
                        h.p90(),
                        h.p99()
                    ));
                    let mut first = true;
                    for (b, &n) in h.buckets().iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!("[{},{}]", Histogram::bucket_upper_bound(b), n));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let mut g = Gauge::new();
        g.set(3.0);
        g.add(-1.5);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Every value lies within its bucket's bounds.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let b = Histogram::bucket_index(v);
            assert!(Histogram::bucket_lower_bound(b) <= v);
            assert!(v <= Histogram::bucket_upper_bound(b));
        }
    }

    #[test]
    fn quantiles_on_known_data() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        // Rank 50 is value 50, bucket [32, 63] → reported upper bound 63.
        assert_eq!(h.quantile(0.5), Some(63));
        // Rank 99/100 are values 99/100, bucket [64, 127] → clamped to max.
        assert_eq!(h.quantile(0.99), Some(100));
        assert_eq!(h.quantile(1.0), Some(100));
        // Rank clamps to 1 at q = 0.
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn merge_is_exact() {
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0u64, 1, 5, 900, 17, u64::MAX, 3, 3, 64] {
            whole.record(v);
        }
        for v in [0u64, 1, 5] {
            a.record(v);
        }
        for v in [900u64, 17, u64::MAX, 3, 3, 64] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole, "merge must be commutative");
    }

    #[test]
    fn trace_ring_wraps_and_orders() {
        let mut ring = TraceRing::new(4);
        for i in 0..10u32 {
            ring.push(TraceEvent::SessionOpen {
                session: i,
                patient: i,
            });
        }
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
        let dump = ring.dump();
        assert_eq!(dump.len(), 4);
        let ticks: Vec<u64> = dump.iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![7, 8, 9, 10], "oldest-first, strictly ordered");
        assert_eq!(
            dump[3].event,
            TraceEvent::SessionOpen {
                session: 9,
                patient: 9
            }
        );
    }

    #[test]
    fn trace_event_kinds_and_display() {
        let e = TraceEvent::Shed {
            session: 7,
            samples: 512,
        };
        assert_eq!(e.kind(), "shed");
        assert_eq!(e.to_string(), "shed session=7 samples=512");
        assert_eq!(TraceEvent::WalError.kind(), "wal_error");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("hbc_frames_total", "Frames handled.", 3);
        snap.push_gauge("hbc_live_sessions", "Live sessions.", 2.0);
        let mut h = Histogram::new();
        h.record(5);
        h.record(900);
        snap.push_histogram("hbc_lat_micros", "Latency.", &h);
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE hbc_frames_total counter"));
        assert!(text.contains("hbc_frames_total 3"));
        assert!(text.contains("# TYPE hbc_live_sessions gauge"));
        assert!(text.contains("# TYPE hbc_lat_micros histogram"));
        // 5 lands in [4,7] (le=7); 900 in [512,1023] (le=1023); cumulative.
        assert!(text.contains("hbc_lat_micros_bucket{le=\"7\"} 1"));
        assert!(text.contains("hbc_lat_micros_bucket{le=\"1023\"} 2"));
        assert!(text.contains("hbc_lat_micros_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hbc_lat_micros_sum 905"));
        assert!(text.contains("hbc_lat_micros_count 2"));
    }

    #[test]
    fn json_exposition_shape() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("a", "A.", 1);
        let mut h = Histogram::new();
        h.record(5);
        snap.push_histogram("h", "H.", &h);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"p50\":5"), "p50 clamps to max: {json}");
        assert!(json.contains("[7,1]"), "bucket pair: {json}");
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("c", "C.", 9);
        snap.push_gauge("g", "G.", 1.5);
        let mut h = Histogram::new();
        h.record(1);
        snap.push_histogram("h", "H.", &h);
        assert_eq!(snap.counter("c"), Some(9));
        assert_eq!(snap.gauge("g"), Some(1.5));
        assert_eq!(snap.histogram("h").map(|h| h.count()), Some(1));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.counter("g"), None, "type mismatch is None");
        assert_eq!(snap.metrics().len(), 3);
    }
}
