//! Decimation utilities.
//!
//! The WBSN version of the classifier operates on signals downsampled 4×
//! (from 360 Hz to 90 Hz): this shrinks both the beat window (200 → 50
//! samples) and the stored projection matrix (Section III-B of the paper).
//! Decimation on the embedded platform is a simple keep-one-in-N (the signal
//! has already been band-limited by the acquisition front-end and the
//! morphological filter), but an optional anti-aliasing moving average is
//! provided for PC-side studies.

use crate::filter::moving_average;
use crate::{DspError, Result};

/// Keeps one sample out of every `factor` samples.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `factor == 0`.
pub fn decimate(signal: &[f64], factor: usize) -> Result<Vec<f64>> {
    if factor == 0 {
        return Err(DspError::InvalidParameter(
            "decimation factor must be non-zero".into(),
        ));
    }
    Ok(signal.iter().step_by(factor).copied().collect())
}

/// Decimates after applying a `factor`-sample moving-average anti-aliasing
/// filter.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `factor == 0`.
pub fn decimate_antialiased(signal: &[f64], factor: usize) -> Result<Vec<f64>> {
    if factor == 0 {
        return Err(DspError::InvalidParameter(
            "decimation factor must be non-zero".into(),
        ));
    }
    if factor == 1 {
        return Ok(signal.to_vec());
    }
    let smoothed = moving_average(signal, factor);
    Ok(smoothed.into_iter().step_by(factor).collect())
}

/// Length of the decimated output for a given input length and factor.
pub fn decimated_len(len: usize, factor: usize) -> usize {
    if factor == 0 {
        return 0;
    }
    len.div_ceil(factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimate_keeps_every_nth_sample() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y = decimate(&x, 4).expect("factor ok");
        assert_eq!(y, vec![0.0, 4.0, 8.0, 12.0, 16.0]);
        assert_eq!(y.len(), decimated_len(x.len(), 4));
    }

    #[test]
    fn factor_one_is_identity() {
        let x: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        assert_eq!(decimate(&x, 1).expect("ok"), x);
        assert_eq!(decimate_antialiased(&x, 1).expect("ok"), x);
    }

    #[test]
    fn zero_factor_is_an_error() {
        assert!(decimate(&[1.0], 0).is_err());
        assert!(decimate_antialiased(&[1.0], 0).is_err());
        assert_eq!(decimated_len(10, 0), 0);
    }

    #[test]
    fn antialiasing_attenuates_high_frequency() {
        // Nyquist-rate alternation would alias badly under plain decimation;
        // the anti-aliased path must attenuate it.
        let x: Vec<f64> = (0..400)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let plain = decimate(&x, 4).expect("ok");
        let aa = decimate_antialiased(&x, 4).expect("ok");
        let energy = |v: &[f64]| v.iter().map(|s| s * s).sum::<f64>();
        assert!(energy(&aa) < 0.05 * energy(&plain));
    }

    #[test]
    fn lengths_match_the_paper_window() {
        // 200-sample window at 360 Hz -> 50 samples at 90 Hz.
        assert_eq!(decimated_len(200, 4), 50);
        let x = vec![0.0; 200];
        assert_eq!(decimate(&x, 4).expect("ok").len(), 50);
    }
}
