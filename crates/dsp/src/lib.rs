//! # hbc-dsp — embedded ECG signal processing
//!
//! The WBSN application of the paper wraps the RP-based classifier with a
//! conditioning front-end and an optional detailed-analysis back-end, all
//! taken from the embedded multi-lead delineation work of Rincón et al.
//! (reference [1] of the paper):
//!
//! * [`filter`] — **morphological filtering** removing baseline wander and
//!   motion artefacts with erosion/dilation (opening/closing) operators,
//!   computed by an O(n) monotone-deque kernel with allocation-free `_into`
//!   variants over a shared [`FrontendScratch`];
//! * [`wavelet`] — an **à-trous dyadic wavelet transform** (quadratic-spline
//!   mother wavelet) producing the four scales the peak detector works on;
//! * [`peak`] — the **R-peak detector**: maximum–minimum pairs across scales
//!   with a zero-crossing refinement on the first scale;
//! * [`delineation`] — **multi-scale morphological derivative (MMD)**
//!   delineation of the P, QRS and T waves (onset / peak / end fiducial
//!   points), combinable across three leads;
//! * [`downsample`] / [`window`] — decimation and beat-window extraction
//!   utilities shared by the PC and WBSN pipelines;
//! * [`streaming`] — push-based, bounded-memory equivalents of the
//!   conditioning chain (baseline filter, à-trous wavelet, R-peak scan,
//!   decimation and beat windowing), bit-identical to the batch kernels and
//!   the substrate of the online firmware in `hbc-embedded`.
//!
//! All algorithms are implemented both in `f64` (PC-side, training) and — for
//! the blocks that run on the WBSN — in integer arithmetic, so that the
//! platform model of `hbc-embedded` can meter realistic operation counts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delineation;
pub mod downsample;
pub mod filter;
pub mod frontend;
pub mod peak;
pub mod streaming;
mod tape;
pub mod wavelet;
pub mod window;

pub use delineation::{BeatFiducials, Delineator, FiducialPoint, WaveFiducials};
pub use filter::{ExtremumKind, MorphologicalFilter};
pub use frontend::FrontendScratch;
pub use peak::{PeakDetector, PeakDetectorConfig, PeakScanner, PeakThresholds};
pub use streaming::{
    StreamingBaselineFilter, StreamingBeatWindower, StreamingDecimator, StreamingPeakDetector,
    StreamingWavelet,
};
pub use wavelet::DyadicWavelet;

/// Errors produced by the DSP crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// The input signal is too short for the requested operation.
    SignalTooShort {
        /// Minimum number of samples required.
        required: usize,
        /// Number of samples provided.
        provided: usize,
    },
    /// An invalid parameter was supplied (zero window, zero factor, …).
    InvalidParameter(String),
}

impl std::fmt::Display for DspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DspError::SignalTooShort { required, provided } => write!(
                f,
                "signal too short: {provided} samples provided, at least {required} required"
            ),
            DspError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for DspError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, DspError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_clearly() {
        let e = DspError::SignalTooShort {
            required: 100,
            provided: 3,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("3"));
        assert!(DspError::InvalidParameter("factor".into())
            .to_string()
            .contains("factor"));
    }
}
