//! Bounded ring buffer over a suffix of an unbounded stream, addressed by
//! absolute sample index — the storage primitive shared by the streaming
//! operators (peak scanner, wavelet stages, beat windower). Centralising it
//! keeps the delicate base/trim arithmetic in one place.

use std::collections::VecDeque;

/// A suffix window of a sample stream with absolute indexing.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tape {
    buf: VecDeque<f64>,
    base: usize,
}

impl Tape {
    /// Appends the next sample of the stream.
    pub(crate) fn push(&mut self, v: f64) {
        self.buf.push_back(v);
    }

    /// Value at absolute stream index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` has been trimmed away or not yet been pushed.
    pub(crate) fn get(&self, i: usize) -> f64 {
        self.buf[i - self.base]
    }

    /// Absolute index of the oldest retained sample.
    pub(crate) fn base(&self) -> usize {
        self.base
    }

    /// Number of samples ever pushed (one past the newest absolute index).
    pub(crate) fn end(&self) -> usize {
        self.base + self.buf.len()
    }

    /// Drops history before absolute index `keep_from`.
    pub(crate) fn trim(&mut self, keep_from: usize) {
        while self.base < keep_from && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
    }

    /// Appends the retained samples `[lo, lo + len)` to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the range is not fully retained.
    pub(crate) fn extend_into(&self, lo: usize, len: usize, out: &mut Vec<f64>) {
        let start = lo - self.base;
        out.extend(self.buf.range(start..start + len));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_indexing_survives_trimming() {
        let mut tape = Tape::default();
        for i in 0..10 {
            tape.push(i as f64);
        }
        assert_eq!(tape.base(), 0);
        assert_eq!(tape.end(), 10);
        tape.trim(4);
        assert_eq!(tape.base(), 4);
        assert_eq!(tape.end(), 10);
        assert_eq!(tape.get(4), 4.0);
        assert_eq!(tape.get(9), 9.0);
        let mut out = vec![0.0];
        tape.extend_into(5, 3, &mut out);
        assert_eq!(out, vec![0.0, 5.0, 6.0, 7.0]);
        // Trimming never advances past the retained data.
        tape.trim(100);
        assert_eq!(tape.base(), 10);
    }
}
