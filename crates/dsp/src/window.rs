//! Beat segmentation: from a continuous record and detected peaks to the
//! fixed-length windows the classifier consumes.
//!
//! This is the glue between the peak detector and the projection stage: the
//! paper defines each heartbeat as 100 samples before and 100 samples after
//! its R peak at 360 Hz.

use hbc_ecg::beat::{Beat, BeatClass, BeatWindow};
use hbc_ecg::record::{Annotation, EcgRecord, Lead};

use crate::{DspError, Result};

/// Extracts beat windows around the given peak positions. Peaks whose window
/// would extend outside the signal are silently skipped (matching the
/// behaviour of an embedded ring-buffer implementation, which simply cannot
/// serve them).
///
/// Each returned beat is paired with the index of the peak (in `peaks`) it
/// was cut around. Because border peaks are skipped, beat index and peak
/// index diverge; consumers that look up per-peak data (such as the
/// annotation matching of [`match_peaks`]) must use the returned peak index,
/// not the position of the beat in the output vector.
pub fn windows_at_peaks(
    signal: &[f64],
    peaks: &[usize],
    window: BeatWindow,
    record_id: u32,
) -> Vec<(usize, Beat)> {
    peaks
        .iter()
        .enumerate()
        .filter_map(|(pi, &p)| {
            window.extract(signal, p).map(|samples| {
                (
                    pi,
                    Beat {
                        samples,
                        class: BeatClass::Unknown,
                        peak_index: window.pre,
                        record_id,
                        record_position: p,
                    },
                )
            })
        })
        .collect()
}

/// Associates detected peaks with ground-truth annotations so that detected
/// beats can be labelled for evaluation.
///
/// Each detected peak is matched to the closest annotation within
/// `tolerance` samples; unmatched peaks keep the [`BeatClass::Unknown`]
/// label and unmatched annotations are counted as missed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeakMatching {
    /// For each detected peak, the index of the matched annotation (if any).
    pub matched_annotation: Vec<Option<usize>>,
    /// Number of annotations with no matching detection.
    pub missed: usize,
    /// Number of detections with no matching annotation (false positives).
    pub spurious: usize,
}

impl PeakMatching {
    /// Detection sensitivity: matched annotations / total annotations.
    pub fn sensitivity(&self, total_annotations: usize) -> f64 {
        if total_annotations == 0 {
            return 1.0;
        }
        (total_annotations - self.missed) as f64 / total_annotations as f64
    }
}

/// Matches detected peaks against record annotations.
///
/// Both inputs are sorted by sample position, so the assignment is computed
/// with a linear two-pointer sweep that maximises the number of matched
/// pairs. (The previous greedy per-peak nearest-annotation search was
/// order-dependent: an early peak could steal the annotation a later peak
/// was strictly closer to, manufacturing a missed + spurious pair where a
/// consistent assignment exists.) When the current peak sits within
/// tolerance of two consecutive annotations, the sweep prefers the closer
/// one exactly when doing so cannot cost a match — i.e. when no later peak
/// can reach the annotation being passed over.
pub fn match_peaks(peaks: &[usize], annotations: &[Annotation], tolerance: usize) -> PeakMatching {
    debug_assert!(peaks.windows(2).all(|w| w[0] <= w[1]), "peaks sorted");
    debug_assert!(
        annotations.windows(2).all(|w| w[0].sample <= w[1].sample),
        "annotations sorted"
    );
    let mut matched_annotation = vec![None; peaks.len()];
    let mut matched_count = 0usize;
    let (mut pi, mut ai) = (0usize, 0usize);
    while pi < peaks.len() && ai < annotations.len() {
        let p = peaks[pi];
        let a = annotations[ai].sample;
        if p + tolerance < a {
            // Peak lies left of every remaining annotation's reach: spurious.
            pi += 1;
            continue;
        }
        if a + tolerance < p {
            // Annotation lies left of every remaining peak's reach: missed.
            ai += 1;
            continue;
        }
        // Compatible pair. Prefer the next annotation when it is strictly
        // closer to this peak *and* the current annotation could not be
        // matched by any later peak anyway (peaks are sorted, so if the next
        // peak cannot reach the next annotation it cannot reach the current
        // one either) — skipping is then free, never costing a match.
        if let Some(next) = annotations.get(ai + 1) {
            let d = p.abs_diff(a);
            let d_next = p.abs_diff(next.sample);
            let next_peak_reaches = peaks
                .get(pi + 1)
                .is_some_and(|&q| q.abs_diff(next.sample) <= tolerance);
            if d_next < d && !next_peak_reaches {
                ai += 1; // current annotation goes unmatched (missed)
                continue;
            }
        }
        matched_annotation[pi] = Some(ai);
        matched_count += 1;
        pi += 1;
        ai += 1;
    }
    let missed = annotations.len() - matched_count;
    let spurious = peaks.len() - matched_count;
    PeakMatching {
        matched_annotation,
        missed,
        spurious,
    }
}

/// Cuts labelled beats from a record lead using detected peak positions and
/// the record's annotations for ground truth.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when the requested lead does not
/// exist in the record.
pub fn labelled_beats_from_record(
    record: &EcgRecord,
    lead: Lead,
    peaks: &[usize],
    window: BeatWindow,
    tolerance: usize,
) -> Result<Vec<Beat>> {
    let signal = record
        .lead(lead)
        .map_err(|e| DspError::InvalidParameter(e.to_string()))?;
    let matching = match_peaks(peaks, &record.annotations, tolerance);
    let mut beats = Vec::new();
    for (pi, &p) in peaks.iter().enumerate() {
        let Some(samples) = window.extract(signal, p) else {
            continue;
        };
        let class = matching.matched_annotation[pi]
            .map(|ai| record.annotations[ai].class)
            .unwrap_or(BeatClass::Unknown);
        beats.push(Beat {
            samples,
            class,
            peak_index: window.pre,
            record_id: record.id,
            record_position: p,
        });
    }
    Ok(beats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_skip_out_of_range_peaks_but_keep_their_indices() {
        let signal: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let beats = windows_at_peaks(&signal, &[10, 500, 990], BeatWindow::PAPER, 42);
        assert_eq!(beats.len(), 1);
        let (peak_index, beat) = &beats[0];
        // The surviving beat originates from peak #1, not #0: consumers that
        // index per-peak tables must use this index.
        assert_eq!(*peak_index, 1);
        assert_eq!(beat.record_position, 500);
        assert_eq!(beat.samples.len(), 200);
        assert_eq!(beat.record_id, 42, "record identity is threaded through");
    }

    #[test]
    fn matching_pairs_each_peak_with_closest_annotation() {
        let annotations = vec![
            Annotation::new(100, BeatClass::Normal),
            Annotation::new(500, BeatClass::PrematureVentricular),
            Annotation::new(900, BeatClass::Normal),
        ];
        let peaks = vec![103, 480, 910, 1200];
        let m = match_peaks(&peaks, &annotations, 30);
        assert_eq!(m.matched_annotation[0], Some(0));
        assert_eq!(m.matched_annotation[1], Some(1));
        assert_eq!(m.matched_annotation[2], Some(2));
        assert_eq!(m.matched_annotation[3], None);
        assert_eq!(m.missed, 0);
        assert_eq!(m.spurious, 1);
        assert!((m.sensitivity(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matching_reports_missed_annotations() {
        let annotations = vec![
            Annotation::new(100, BeatClass::Normal),
            Annotation::new(500, BeatClass::Normal),
        ];
        let m = match_peaks(&[102], &annotations, 10);
        assert_eq!(m.missed, 1);
        assert_eq!(m.spurious, 0);
        assert!((m.sensitivity(2) - 0.5).abs() < 1e-12);
        assert!((m.sensitivity(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_pointer_matching_does_not_let_an_early_peak_steal_a_later_peaks_annotation() {
        // Greedy nearest-first matching fails here: peak 108 is closest to
        // annotation 110 and would take it, leaving peak 112 unmatched and
        // annotation 100 missed — a manufactured missed + spurious pair.
        // The optimal assignment matches both: 108 → 100 (d = 8), 112 → 110
        // (d = 2).
        let annotations = vec![
            Annotation::new(100, BeatClass::Normal),
            Annotation::new(110, BeatClass::PrematureVentricular),
        ];
        let m = match_peaks(&[108, 112], &annotations, 10);
        assert_eq!(m.matched_annotation, vec![Some(0), Some(1)]);
        assert_eq!(m.missed, 0);
        assert_eq!(m.spurious, 0);
    }

    #[test]
    fn matching_prefers_the_closer_annotation_when_skipping_is_free() {
        // Both annotations are within tolerance of the only peak; 96 is
        // strictly closer and no later peak can rescue 90, so the sweep
        // matches 96 and reports 90 as missed.
        let annotations = vec![
            Annotation::new(90, BeatClass::Normal),
            Annotation::new(96, BeatClass::PrematureVentricular),
        ];
        let m = match_peaks(&[95], &annotations, 10);
        assert_eq!(m.matched_annotation, vec![Some(1)]);
        assert_eq!(m.missed, 1);
        assert_eq!(m.spurious, 0);
    }

    #[test]
    fn matching_does_not_skip_when_a_later_peak_needs_the_next_annotation() {
        // Peak 104 is closer to annotation 105 than to 100, but peak 107
        // can also reach 105; skipping 100 would trade one match for
        // another, so the sweep keeps the order-consistent assignment.
        let annotations = vec![
            Annotation::new(100, BeatClass::Normal),
            Annotation::new(105, BeatClass::Normal),
        ];
        let m = match_peaks(&[104, 107], &annotations, 5);
        assert_eq!(m.matched_annotation, vec![Some(0), Some(1)]);
        assert_eq!(m.missed, 0);
        assert_eq!(m.spurious, 0);
    }

    #[test]
    fn annotations_are_not_double_matched() {
        let annotations = vec![Annotation::new(100, BeatClass::Normal)];
        let m = match_peaks(&[98, 102], &annotations, 10);
        let matched = m.matched_annotation.iter().filter(|x| x.is_some()).count();
        assert_eq!(matched, 1, "one annotation can satisfy only one detection");
        assert_eq!(m.spurious, 1);
    }

    #[test]
    fn labelled_extraction_uses_annotations_for_ground_truth() {
        let mut signal = vec![0.0; 2000];
        signal[600] = 1.0;
        signal[1200] = 1.0;
        let record = EcgRecord::new(
            7,
            360.0,
            vec![signal],
            vec![
                Annotation::new(600, BeatClass::LeftBundleBranchBlock),
                Annotation::new(1200, BeatClass::Normal),
            ],
        )
        .expect("valid record");
        let beats =
            labelled_beats_from_record(&record, Lead(0), &[598, 1203, 1700], BeatWindow::PAPER, 15)
                .expect("lead exists");
        assert_eq!(beats.len(), 3);
        assert_eq!(beats[0].class, BeatClass::LeftBundleBranchBlock);
        assert_eq!(beats[1].class, BeatClass::Normal);
        assert_eq!(beats[2].class, BeatClass::Unknown);
        assert_eq!(beats[0].record_id, 7);
        assert!(labelled_beats_from_record(&record, Lead(5), &[], BeatWindow::PAPER, 15).is_err());
    }
}
