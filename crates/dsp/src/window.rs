//! Beat segmentation: from a continuous record and detected peaks to the
//! fixed-length windows the classifier consumes.
//!
//! This is the glue between the peak detector and the projection stage: the
//! paper defines each heartbeat as 100 samples before and 100 samples after
//! its R peak at 360 Hz.

use hbc_ecg::beat::{Beat, BeatClass, BeatWindow};
use hbc_ecg::record::{Annotation, EcgRecord, Lead};

use crate::{DspError, Result};

/// Extracts beat windows around the given peak positions. Peaks whose window
/// would extend outside the signal are silently skipped (matching the
/// behaviour of an embedded ring-buffer implementation, which simply cannot
/// serve them).
pub fn windows_at_peaks(signal: &[f64], peaks: &[usize], window: BeatWindow) -> Vec<Beat> {
    peaks
        .iter()
        .filter_map(|&p| {
            window.extract(signal, p).map(|samples| Beat {
                samples,
                class: BeatClass::Unknown,
                peak_index: window.pre,
                record_id: 0,
                record_position: p,
            })
        })
        .collect()
}

/// Associates detected peaks with ground-truth annotations so that detected
/// beats can be labelled for evaluation.
///
/// Each detected peak is matched to the closest annotation within
/// `tolerance` samples; unmatched peaks keep the [`BeatClass::Unknown`]
/// label and unmatched annotations are counted as missed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeakMatching {
    /// For each detected peak, the index of the matched annotation (if any).
    pub matched_annotation: Vec<Option<usize>>,
    /// Number of annotations with no matching detection.
    pub missed: usize,
    /// Number of detections with no matching annotation (false positives).
    pub spurious: usize,
}

impl PeakMatching {
    /// Detection sensitivity: matched annotations / total annotations.
    pub fn sensitivity(&self, total_annotations: usize) -> f64 {
        if total_annotations == 0 {
            return 1.0;
        }
        (total_annotations - self.missed) as f64 / total_annotations as f64
    }
}

/// Matches detected peaks against record annotations.
pub fn match_peaks(peaks: &[usize], annotations: &[Annotation], tolerance: usize) -> PeakMatching {
    let mut matched_annotation = vec![None; peaks.len()];
    let mut annotation_taken = vec![false; annotations.len()];
    for (pi, &p) in peaks.iter().enumerate() {
        let mut best: Option<(usize, usize)> = None; // (distance, annotation idx)
        for (ai, a) in annotations.iter().enumerate() {
            if annotation_taken[ai] {
                continue;
            }
            let d = p.abs_diff(a.sample);
            if d <= tolerance && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, ai));
            }
        }
        if let Some((_, ai)) = best {
            annotation_taken[ai] = true;
            matched_annotation[pi] = Some(ai);
        }
    }
    let missed = annotation_taken.iter().filter(|t| !**t).count();
    let spurious = matched_annotation.iter().filter(|m| m.is_none()).count();
    PeakMatching {
        matched_annotation,
        missed,
        spurious,
    }
}

/// Cuts labelled beats from a record lead using detected peak positions and
/// the record's annotations for ground truth.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when the requested lead does not
/// exist in the record.
pub fn labelled_beats_from_record(
    record: &EcgRecord,
    lead: Lead,
    peaks: &[usize],
    window: BeatWindow,
    tolerance: usize,
) -> Result<Vec<Beat>> {
    let signal = record
        .lead(lead)
        .map_err(|e| DspError::InvalidParameter(e.to_string()))?;
    let matching = match_peaks(peaks, &record.annotations, tolerance);
    let mut beats = Vec::new();
    for (pi, &p) in peaks.iter().enumerate() {
        let Some(samples) = window.extract(signal, p) else {
            continue;
        };
        let class = matching.matched_annotation[pi]
            .map(|ai| record.annotations[ai].class)
            .unwrap_or(BeatClass::Unknown);
        beats.push(Beat {
            samples,
            class,
            peak_index: window.pre,
            record_id: record.id,
            record_position: p,
        });
    }
    Ok(beats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_skip_out_of_range_peaks() {
        let signal: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let beats = windows_at_peaks(&signal, &[10, 500, 990], BeatWindow::PAPER);
        assert_eq!(beats.len(), 1);
        assert_eq!(beats[0].record_position, 500);
        assert_eq!(beats[0].samples.len(), 200);
    }

    #[test]
    fn matching_pairs_each_peak_with_closest_annotation() {
        let annotations = vec![
            Annotation::new(100, BeatClass::Normal),
            Annotation::new(500, BeatClass::PrematureVentricular),
            Annotation::new(900, BeatClass::Normal),
        ];
        let peaks = vec![103, 480, 910, 1200];
        let m = match_peaks(&peaks, &annotations, 30);
        assert_eq!(m.matched_annotation[0], Some(0));
        assert_eq!(m.matched_annotation[1], Some(1));
        assert_eq!(m.matched_annotation[2], Some(2));
        assert_eq!(m.matched_annotation[3], None);
        assert_eq!(m.missed, 0);
        assert_eq!(m.spurious, 1);
        assert!((m.sensitivity(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matching_reports_missed_annotations() {
        let annotations = vec![
            Annotation::new(100, BeatClass::Normal),
            Annotation::new(500, BeatClass::Normal),
        ];
        let m = match_peaks(&[102], &annotations, 10);
        assert_eq!(m.missed, 1);
        assert_eq!(m.spurious, 0);
        assert!((m.sensitivity(2) - 0.5).abs() < 1e-12);
        assert!((m.sensitivity(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn annotations_are_not_double_matched() {
        let annotations = vec![Annotation::new(100, BeatClass::Normal)];
        let m = match_peaks(&[98, 102], &annotations, 10);
        let matched = m.matched_annotation.iter().filter(|x| x.is_some()).count();
        assert_eq!(matched, 1, "one annotation can satisfy only one detection");
        assert_eq!(m.spurious, 1);
    }

    #[test]
    fn labelled_extraction_uses_annotations_for_ground_truth() {
        let mut signal = vec![0.0; 2000];
        signal[600] = 1.0;
        signal[1200] = 1.0;
        let record = EcgRecord::new(
            7,
            360.0,
            vec![signal],
            vec![
                Annotation::new(600, BeatClass::LeftBundleBranchBlock),
                Annotation::new(1200, BeatClass::Normal),
            ],
        )
        .expect("valid record");
        let beats =
            labelled_beats_from_record(&record, Lead(0), &[598, 1203, 1700], BeatWindow::PAPER, 15)
                .expect("lead exists");
        assert_eq!(beats.len(), 3);
        assert_eq!(beats[0].class, BeatClass::LeftBundleBranchBlock);
        assert_eq!(beats[1].class, BeatClass::Normal);
        assert_eq!(beats[2].class, BeatClass::Unknown);
        assert_eq!(beats[0].record_id, 7);
        assert!(labelled_beats_from_record(&record, Lead(5), &[], BeatWindow::PAPER, 15).is_err());
    }
}
