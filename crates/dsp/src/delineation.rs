//! Multi-scale morphological derivative (MMD) delineation.
//!
//! The "detailed analysis" the RP classifier gates (sub-system (2) of
//! Figure 6) is a three-lead wave delineator based on multi-scale
//! morphological derivatives, following Rincón et al. For every beat it
//! produces the nine fiducial points the WBSN would transmit for a
//! pathological beat: onset, peak and end of the P wave, the QRS complex and
//! the T wave.
//!
//! The MMD operator at scale `s` is
//! `MMD(x, i) = max(x[i−s..=i]) + min(x[i..=i+s]) − 2·x[i]` — a second-
//! derivative-like operator computable with comparisons only. Wave onsets and
//! ends appear as MMD maxima surrounding a wave peak; the wave peak itself is
//! the extremum of the filtered signal between them.
//!
//! Like the morphological baseline filter, the per-sample window scans of the
//! operator are sliding extrema, so [`Delineator::mmd`] runs on the same
//! monotone-wedge kernel ([`SlidingExtremum`]) as the rest of the front-end:
//! the trailing maximum is one forward pass with a `s + 1`-sample wedge, the
//! leading minimum one backward pass, O(n) total and independent of the
//! scale. The original per-output rescans are kept as
//! [`Delineator::mmd_naive`] — the equivalence oracle (min/max are pure
//! comparisons, so the two are *exactly* equal) and the pre-deque reference
//! of the embedded cycle model.

use crate::filter::moving_average;
use crate::streaming::{ExtremumKind, SlidingExtremum};
use crate::{DspError, Result};

/// One fiducial point: a sample index inside the analysed window, or absent
/// when the wave could not be found (e.g. no P wave in a PVC).
pub type FiducialPoint = Option<usize>;

/// Onset / peak / end triple of one characteristic wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaveFiducials {
    /// Sample index of the wave onset.
    pub onset: FiducialPoint,
    /// Sample index of the wave peak.
    pub peak: FiducialPoint,
    /// Sample index of the wave end.
    pub end: FiducialPoint,
}

impl WaveFiducials {
    /// Number of fiducial points actually located (0–3).
    pub fn count(&self) -> usize {
        [self.onset, self.peak, self.end]
            .iter()
            .filter(|p| p.is_some())
            .count()
    }
}

/// The full set of fiducial points for one beat (P, QRS, T).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BeatFiducials {
    /// P-wave fiducials.
    pub p: WaveFiducials,
    /// QRS-complex fiducials.
    pub qrs: WaveFiducials,
    /// T-wave fiducials.
    pub t: WaveFiducials,
}

impl BeatFiducials {
    /// Total number of fiducial points located (0–9). The paper's wireless
    /// energy model transmits this many points for abnormal beats and only
    /// the R peak for normal ones.
    pub fn count(&self) -> usize {
        self.p.count() + self.qrs.count() + self.t.count()
    }
}

/// Multi-scale morphological derivative delineator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delineator {
    fs: f64,
    /// MMD scale used for the QRS complex, in samples.
    qrs_scale: usize,
    /// MMD scale used for the P and T waves, in samples.
    wave_scale: usize,
}

impl Delineator {
    /// Creates a delineator for signals sampled at `fs` Hz, with scales of
    /// 60 ms (QRS) and 100 ms (P/T) as in the reference implementation.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive.
    pub fn new(fs: f64) -> Self {
        assert!(fs > 0.0, "sampling frequency must be positive");
        Delineator {
            fs,
            qrs_scale: ((0.06 * fs).round() as usize).max(2),
            wave_scale: ((0.10 * fs).round() as usize).max(2),
        }
    }

    /// Sampling frequency the delineator was built for.
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Computes the MMD of `signal` at the given scale with the monotone-
    /// wedge kernel: the trailing maximum `max(x[i−s..=i])` is a forward
    /// [`SlidingExtremum`] pass over the last `s + 1` samples (the wedge
    /// warm-up reproduces the left clamping), the leading minimum
    /// `min(x[i..=i+s])` the same pass over the reversed signal. Two O(n)
    /// passes regardless of the scale, bit-identical to
    /// [`Self::mmd_naive`].
    pub fn mmd(signal: &[f64], scale: usize) -> Vec<f64> {
        let n = signal.len();
        let mut out = vec![0.0; n];
        if n == 0 || scale == 0 {
            return out;
        }
        let mut trailing_max = SlidingExtremum::new(ExtremumKind::Max, scale + 1);
        for (i, &x) in signal.iter().enumerate() {
            // After this push the wedge covers the last `min(i, s) + 1`
            // samples: exactly the clamped window `[i − s, i]`.
            out[i] = trailing_max.push(x);
        }
        let mut leading_min = SlidingExtremum::new(ExtremumKind::Min, scale + 1);
        for (i, &x) in signal.iter().enumerate().rev() {
            // Walking right-to-left, the trailing window of the reversed
            // stream is the clamped leading window `[i, i + s]`. Summed in
            // the oracle's association order, (max + min) − 2x.
            out[i] = (out[i] + leading_min.push(x)) - 2.0 * x;
        }
        out
    }

    /// The naive per-output window rescan of the MMD operator — O(n·s).
    /// Kept as the equivalence oracle for [`Self::mmd`] and as the cost the
    /// embedded cycle model charged before the deque port (see
    /// `hbc_embedded::cycles::naive_delineation_ops_per_beat_per_lead`).
    pub fn mmd_naive(signal: &[f64], scale: usize) -> Vec<f64> {
        let n = signal.len();
        let mut out = vec![0.0; n];
        if n == 0 || scale == 0 {
            return out;
        }
        for i in 0..n {
            let lo = i.saturating_sub(scale);
            let hi = (i + scale + 1).min(n);
            let left_max = signal[lo..=i].iter().cloned().fold(f64::MIN, f64::max);
            let right_min = signal[i..hi].iter().cloned().fold(f64::MAX, f64::min);
            out[i] = left_max + right_min - 2.0 * signal[i];
        }
        out
    }

    /// Delineates a single-lead beat window centred on the R peak at
    /// `peak_index`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the window is shorter than
    /// four MMD scales and [`DspError::InvalidParameter`] when `peak_index`
    /// lies outside the window.
    pub fn delineate_beat(&self, window: &[f64], peak_index: usize) -> Result<BeatFiducials> {
        let required = 4 * self.wave_scale;
        if window.len() < required {
            return Err(DspError::SignalTooShort {
                required,
                provided: window.len(),
            });
        }
        if peak_index >= window.len() {
            return Err(DspError::InvalidParameter(format!(
                "peak index {peak_index} outside the {}-sample window",
                window.len()
            )));
        }
        let smoothed = moving_average(window, (0.01 * self.fs).max(1.0) as usize);

        // --- QRS ---
        let qrs_half = (0.09 * self.fs) as usize;
        let qrs_lo = peak_index.saturating_sub(qrs_half);
        let qrs_hi = (peak_index + qrs_half).min(window.len());
        let qrs = self.delineate_wave(&smoothed, qrs_lo, qrs_hi, self.qrs_scale, true);

        // --- P wave: search before QRS onset ---
        let p_search_hi = qrs.onset.unwrap_or(qrs_lo);
        let p_search_lo = p_search_hi.saturating_sub((0.22 * self.fs) as usize);
        let mut p = if p_search_hi > p_search_lo + self.wave_scale {
            self.delineate_wave(&smoothed, p_search_lo, p_search_hi, self.wave_scale, false)
        } else {
            WaveFiducials::default()
        };
        // A genuine P wave is separated from the QRS by the PQ segment; a
        // "wave" hugging the QRS onset is really the start of a wide (e.g.
        // ventricular) QRS complex and must not be reported as P.
        if let Some(peak) = p.peak {
            let pq_gap = (0.05 * self.fs) as usize;
            if peak + pq_gap >= p_search_hi {
                p = WaveFiducials::default();
            }
        }

        // --- T wave: search after QRS end ---
        let t_search_lo = qrs.end.unwrap_or(qrs_hi);
        let t_search_hi = (t_search_lo + (0.36 * self.fs) as usize).min(window.len());
        let t = if t_search_hi > t_search_lo + self.wave_scale {
            self.delineate_wave(&smoothed, t_search_lo, t_search_hi, self.wave_scale, false)
        } else {
            WaveFiducials::default()
        };

        Ok(BeatFiducials { p, qrs, t })
    }

    /// Delineates all three leads of a beat and fuses the per-lead results by
    /// majority / earliest-onset, latest-end combination — the multi-lead
    /// strategy of the reference delineator.
    ///
    /// # Errors
    ///
    /// Propagates the single-lead errors; at least one lead must be provided.
    pub fn delineate_multilead(
        &self,
        leads: &[&[f64]],
        peak_index: usize,
    ) -> Result<BeatFiducials> {
        if leads.is_empty() {
            return Err(DspError::InvalidParameter(
                "at least one lead is required".into(),
            ));
        }
        let per_lead: Vec<BeatFiducials> = leads
            .iter()
            .map(|l| self.delineate_beat(l, peak_index))
            .collect::<Result<_>>()?;
        Ok(fuse(&per_lead))
    }

    /// Finds a wave (onset, peak, end) inside `[lo, hi)`.
    ///
    /// The wave peak is the largest excursion of the smoothed signal from the
    /// local baseline (mean of the segment ends). Onset and end are located by
    /// walking away from the peak until the excursion drops below 10 % of the
    /// wave amplitude — the amplitude-threshold simplification of the MMD
    /// corner criterion, which behaves identically on the smooth synthetic
    /// morphologies while being robust to the short search windows used here.
    /// `is_qrs` selects the minimum amplitude a wave must exhibit to be
    /// reported at all (QRS complexes are always large; P/T waves may be
    /// genuinely absent).
    fn delineate_wave(
        &self,
        signal: &[f64],
        lo: usize,
        hi: usize,
        _scale: usize,
        is_qrs: bool,
    ) -> WaveFiducials {
        if hi <= lo || hi - lo < 3 {
            return WaveFiducials::default();
        }
        let segment = &signal[lo..hi];
        // Local baseline = mean of the segment ends.
        let baseline = 0.5 * (segment[0] + segment[segment.len() - 1]);

        // Wave peak: extremum of |signal - baseline|.
        let (rel_peak, amplitude) = segment
            .iter()
            .enumerate()
            .map(|(i, &v)| (i, (v - baseline).abs()))
            .fold((0, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc });
        // A wave must stand out from the baseline to be reported at all.
        let min_amplitude = if is_qrs { 0.05 } else { 0.03 };
        if amplitude < min_amplitude {
            return WaveFiducials::default();
        }
        let peak = lo + rel_peak;
        let threshold = 0.1 * amplitude;

        // Onset: walk left from the peak until the excursion falls below the
        // threshold; end: walk right symmetrically.
        let mut onset_rel = 0usize;
        for i in (0..rel_peak).rev() {
            if (segment[i] - baseline).abs() < threshold {
                onset_rel = i;
                break;
            }
        }
        let mut end_rel = segment.len() - 1;
        for (i, &v) in segment.iter().enumerate().skip(rel_peak + 1) {
            if (v - baseline).abs() < threshold {
                end_rel = i;
                break;
            }
        }

        WaveFiducials {
            onset: Some(lo + onset_rel),
            peak: Some(peak),
            end: Some(lo + end_rel),
        }
    }
}

/// Fuses per-lead fiducials: earliest onset, median peak, latest end, per
/// wave; a wave is reported only when at least half of the leads found it.
fn fuse(per_lead: &[BeatFiducials]) -> BeatFiducials {
    let majority = per_lead.len().div_ceil(2);
    let fuse_wave = |select: fn(&BeatFiducials) -> WaveFiducials| -> WaveFiducials {
        let found: Vec<WaveFiducials> = per_lead
            .iter()
            .map(select)
            .filter(|w| w.peak.is_some())
            .collect();
        if found.len() < majority {
            return WaveFiducials::default();
        }
        let onset = found.iter().filter_map(|w| w.onset).min();
        let end = found.iter().filter_map(|w| w.end).max();
        let mut peaks: Vec<usize> = found.iter().filter_map(|w| w.peak).collect();
        peaks.sort_unstable();
        let peak = Some(peaks[peaks.len() / 2]);
        WaveFiducials { onset, peak, end }
    };
    BeatFiducials {
        p: fuse_wave(|b| b.p),
        qrs: fuse_wave(|b| b.qrs),
        t: fuse_wave(|b| b.t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_ecg::noise::NoiseModel;
    use hbc_ecg::synthetic::{SyntheticEcg, Variability};
    use hbc_ecg::BeatClass;

    fn clean_beat(class: BeatClass) -> hbc_ecg::Beat {
        SyntheticEcg::with_seed(4)
            .with_noise(NoiseModel::clean())
            .with_variability(Variability::none())
            .beat(class)
    }

    #[test]
    fn mmd_of_constant_signal_is_zero() {
        let mmd = Delineator::mmd(&[2.0; 64], 5);
        assert!(mmd.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn deque_mmd_is_bit_identical_to_the_naive_scan() {
        // Real beat morphology plus adversarial shapes (plateaus for tie
        // handling, monotone ramps for one-sided wedges), across scales
        // including degenerate (0), window-sized and over-length ones.
        let beat = clean_beat(BeatClass::Normal);
        let mut plateau = vec![0.0; 97];
        for (i, v) in plateau.iter_mut().enumerate() {
            *v = [1.0, 1.0, -2.0, 0.5, 0.5, 0.5][i % 6];
        }
        let ramp: Vec<f64> = (0..64).map(|i| i as f64 * 0.25 - 4.0).collect();
        for signal in [beat.samples.as_slice(), &plateau, &ramp, &[], &[3.0]] {
            for scale in [0usize, 1, 2, 3, 7, 21, 36, 50, 96, 97, 200] {
                assert_eq!(
                    Delineator::mmd(signal, scale),
                    Delineator::mmd_naive(signal, scale),
                    "n = {}, scale = {scale}",
                    signal.len()
                );
            }
        }
    }

    #[test]
    fn noisy_beats_keep_deque_and_naive_mmd_identical() {
        // Noise exercises tie-free dense orderings; several beats and both
        // delineation scales of the 360 Hz operating point.
        let d = Delineator::new(360.0);
        for seed in 0..4 {
            let beat = SyntheticEcg::with_seed(seed).beat(BeatClass::PrematureVentricular);
            for scale in [d.qrs_scale, d.wave_scale] {
                assert_eq!(
                    Delineator::mmd(&beat.samples, scale),
                    Delineator::mmd_naive(&beat.samples, scale),
                    "seed {seed}, scale {scale}"
                );
            }
        }
    }

    #[test]
    fn mmd_responds_at_slope_changes() {
        // Triangle wave: the apex is a slope change the MMD must flag.
        let mut signal = vec![0.0; 101];
        for (i, s) in signal.iter_mut().enumerate() {
            *s = if i <= 50 { i as f64 } else { 100.0 - i as f64 } * 0.02;
        }
        let mmd = Delineator::mmd(&signal, 10);
        let apex_response = mmd[50].abs();
        let flank_response = mmd[25].abs();
        assert!(
            apex_response > 5.0 * flank_response.max(1e-9),
            "apex {apex_response} vs flank {flank_response}"
        );
    }

    #[test]
    fn normal_beat_yields_all_nine_fiducials() {
        let beat = clean_beat(BeatClass::Normal);
        let d = Delineator::new(360.0);
        let f = d
            .delineate_beat(&beat.samples, beat.peak_index)
            .expect("delineate");
        assert_eq!(f.qrs.count(), 3, "QRS onset/peak/end should all be found");
        assert_eq!(f.p.count(), 3, "normal beats have a P wave: {f:?}");
        assert_eq!(f.t.count(), 3, "normal beats have a T wave: {f:?}");
        assert_eq!(f.count(), 9);
        // QRS peak must be near the annotated R peak.
        let qrs_peak = f.qrs.peak.expect("peak found");
        assert!(
            (qrs_peak as isize - 100).abs() <= 8,
            "QRS peak at {qrs_peak}"
        );
        // Ordering of fiducials must be physiological.
        assert!(f.p.peak.expect("p") < f.qrs.onset.expect("qrs onset"));
        assert!(f.qrs.end.expect("qrs end") <= f.t.onset.expect("t onset") + 1);
    }

    #[test]
    fn pvc_beat_has_no_p_wave_but_wide_qrs() {
        let d = Delineator::new(360.0);
        let n = clean_beat(BeatClass::Normal);
        let v = clean_beat(BeatClass::PrematureVentricular);
        let fn_ = d.delineate_beat(&n.samples, n.peak_index).expect("n");
        let fv = d.delineate_beat(&v.samples, v.peak_index).expect("v");
        assert_eq!(fv.p.count(), 0, "PVC should not expose a P wave: {fv:?}");
        let width = |f: &BeatFiducials| match (f.qrs.onset, f.qrs.end) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => 0,
        };
        assert!(
            width(&fv) > width(&fn_),
            "PVC QRS ({}) should be wider than normal ({})",
            width(&fv),
            width(&fn_)
        );
    }

    #[test]
    fn multilead_fusion_requires_majority() {
        let beat = clean_beat(BeatClass::Normal);
        let d = Delineator::new(360.0);
        // Lead 2 is a flat line: fusion should still report waves found by
        // the two informative leads.
        let flat = vec![0.0; beat.samples.len()];
        let scaled: Vec<f64> = beat.samples.iter().map(|s| s * 0.7).collect();
        let fused = d
            .delineate_multilead(&[&beat.samples, &scaled, &flat], beat.peak_index)
            .expect("multilead");
        assert_eq!(fused.qrs.count(), 3);
        assert!(fused.count() >= 6);
        // With two flat leads out of three, majority fails and nothing is
        // reported.
        let fused2 = d
            .delineate_multilead(&[&beat.samples, &flat, &flat], beat.peak_index)
            .expect("multilead");
        assert_eq!(fused2.qrs.count(), 0);
    }

    #[test]
    fn error_paths_are_reported() {
        let d = Delineator::new(360.0);
        assert!(matches!(
            d.delineate_beat(&[0.0; 10], 5),
            Err(DspError::SignalTooShort { .. })
        ));
        assert!(matches!(
            d.delineate_beat(&[0.0; 300], 400),
            Err(DspError::InvalidParameter(_))
        ));
        assert!(matches!(
            d.delineate_multilead(&[], 10),
            Err(DspError::InvalidParameter(_))
        ));
    }

    #[test]
    fn flat_window_produces_no_fiducials() {
        let d = Delineator::new(360.0);
        let f = d.delineate_beat(&[0.0; 200], 100).expect("flat ok");
        assert_eq!(f.count(), 0);
    }
}
