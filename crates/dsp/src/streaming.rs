//! Streaming (sample-by-sample) versions of the conditioning kernels.
//!
//! The batch functions of [`crate::filter`] are convenient for training and
//! for record-level experiments, but the firmware on the WBSN processes one
//! ADC sample at a time with bounded memory. This module provides the
//! online equivalents:
//!
//! * [`SlidingExtremum`] — O(1) amortised sliding-window minimum/maximum
//!   (monotone-wedge algorithm), the primitive behind streaming erosion and
//!   dilation;
//! * [`StreamingErosion`] / [`StreamingDilation`] — centred structuring
//!   elements with a fixed group delay of `size/2` samples;
//! * [`StreamingBaselineFilter`] — the opening/closing baseline estimator of
//!   [`crate::filter::MorphologicalFilter`] as a push-based pipeline.
//!
//! Unit tests verify that, after accounting for the group delay, the
//! streaming outputs match the batch implementations sample for sample in
//! the interior of the signal — the property that lets the duty-cycle model
//! meter the batch kernels while the firmware conceptually runs online.

use std::collections::VecDeque;

/// Which extremum a [`SlidingExtremum`] tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtremumKind {
    /// Sliding minimum (erosion).
    Min,
    /// Sliding maximum (dilation).
    Max,
}

/// Sliding-window extremum over the last `window` pushed samples, computed in
/// O(1) amortised time with a monotone wedge.
#[derive(Debug, Clone)]
pub struct SlidingExtremum {
    kind: ExtremumKind,
    window: usize,
    /// (index, value) pairs forming a monotone sequence.
    wedge: VecDeque<(u64, f64)>,
    pushed: u64,
}

impl SlidingExtremum {
    /// Creates a tracker over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(kind: ExtremumKind, window: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        SlidingExtremum {
            kind,
            window,
            wedge: VecDeque::new(),
            pushed: 0,
        }
    }

    fn dominates(&self, kept: f64, incoming: f64) -> bool {
        match self.kind {
            ExtremumKind::Min => kept <= incoming,
            ExtremumKind::Max => kept >= incoming,
        }
    }

    /// Pushes a sample and returns the extremum of the last `window` samples
    /// (fewer at the start of the stream).
    pub fn push(&mut self, value: f64) -> f64 {
        // Drop samples that left the window.
        while let Some(&(idx, _)) = self.wedge.front() {
            if idx + self.window as u64 <= self.pushed {
                self.wedge.pop_front();
            } else {
                break;
            }
        }
        // Maintain monotonicity: remove dominated tail entries.
        while let Some(&(_, v)) = self.wedge.back() {
            if self.dominates(v, value) {
                break;
            }
            self.wedge.pop_back();
        }
        self.wedge.push_back((self.pushed, value));
        self.pushed += 1;
        self.wedge.front().map(|&(_, v)| v).expect("just pushed")
    }

    /// Number of samples pushed so far.
    pub fn len(&self) -> u64 {
        self.pushed
    }

    /// Whether no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }
}

/// Streaming erosion with a centred flat structuring element of `size`
/// samples: the output for input sample `n` is produced `size/2` samples
/// later (the group delay), matching [`crate::filter::erode`] away from the
/// borders.
#[derive(Debug, Clone)]
pub struct StreamingErosion {
    extremum: SlidingExtremum,
    delay: usize,
    seen: usize,
}

/// Streaming dilation with a centred flat structuring element (see
/// [`StreamingErosion`]).
#[derive(Debug, Clone)]
pub struct StreamingDilation {
    extremum: SlidingExtremum,
    delay: usize,
    seen: usize,
}

macro_rules! impl_streaming_morph {
    ($name:ident, $kind:expr) => {
        impl $name {
            /// Creates the operator for a structuring element of `size`
            /// samples.
            ///
            /// # Panics
            ///
            /// Panics if `size == 0`.
            pub fn new(size: usize) -> Self {
                // The batch operator uses a window of `2*(size/2) + 1`
                // centred samples; the streaming window matches that.
                let half = size / 2;
                Self {
                    extremum: SlidingExtremum::new($kind, 2 * half + 1),
                    delay: half,
                    seen: 0,
                }
            }

            /// Group delay (samples) between an input and the output that
            /// corresponds to it.
            pub fn delay(&self) -> usize {
                self.delay
            }

            /// Pushes one sample; returns the output aligned to the sample
            /// pushed `delay()` calls ago, or `None` while the pipeline is
            /// still filling.
            pub fn push(&mut self, value: f64) -> Option<f64> {
                let out = self.extremum.push(value);
                self.seen += 1;
                if self.seen > self.delay {
                    Some(out)
                } else {
                    None
                }
            }
        }
    };
}

impl_streaming_morph!(StreamingErosion, ExtremumKind::Min);
impl_streaming_morph!(StreamingDilation, ExtremumKind::Max);

/// Streaming baseline-wander filter: opening followed by closing with the
/// short (QRS) structuring element, then the average of opening and closing
/// with the long (beat) element, subtracted from the delayed input — the
/// same computation as [`crate::filter::MorphologicalFilter`], expressed as a
/// push pipeline with a fixed total latency.
#[derive(Debug, Clone)]
pub struct StreamingBaselineFilter {
    // Stage 1: opening (erode then dilate) and closing (dilate then erode)
    // with the QRS element, chained.
    open1_erode: StreamingErosion,
    open1_dilate: StreamingDilation,
    close1_dilate: StreamingDilation,
    close1_erode: StreamingErosion,
    // Stage 2: opening and closing with the beat element, in parallel.
    open2_erode: StreamingErosion,
    open2_dilate: StreamingDilation,
    close2_dilate: StreamingDilation,
    close2_erode: StreamingErosion,
    // Delay line aligning the raw input with the baseline estimate.
    input_delay: VecDeque<f64>,
    total_delay: usize,
}

impl StreamingBaselineFilter {
    /// Builds the streaming filter for a sampling rate, using the same
    /// structuring-element durations as the batch filter.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive.
    pub fn for_sampling_rate(fs: f64) -> Self {
        let batch = crate::filter::MorphologicalFilter::for_sampling_rate(fs);
        let qrs_half = batch.qrs_element / 2;
        let beat_half = batch.beat_element / 2;
        let total_delay = 4 * qrs_half + 2 * beat_half;
        StreamingBaselineFilter {
            open1_erode: StreamingErosion::new(batch.qrs_element),
            open1_dilate: StreamingDilation::new(batch.qrs_element),
            close1_dilate: StreamingDilation::new(batch.qrs_element),
            close1_erode: StreamingErosion::new(batch.qrs_element),
            open2_erode: StreamingErosion::new(batch.beat_element),
            open2_dilate: StreamingDilation::new(batch.beat_element),
            close2_dilate: StreamingDilation::new(batch.beat_element),
            close2_erode: StreamingErosion::new(batch.beat_element),
            input_delay: VecDeque::new(),
            total_delay,
        }
    }

    /// Total group delay of the pipeline, in samples.
    pub fn delay(&self) -> usize {
        self.total_delay
    }

    /// Pushes one raw sample; returns the baseline-corrected sample aligned
    /// to the input pushed `delay()` calls ago, once the pipeline has filled.
    pub fn push(&mut self, value: f64) -> Option<f64> {
        self.input_delay.push_back(value);

        // Stage 1 chain.
        let opened = self
            .open1_erode
            .push(value)
            .and_then(|v| self.open1_dilate.push(v));
        let stage1 = opened
            .and_then(|v| self.close1_dilate.push(v))
            .and_then(|v| self.close1_erode.push(v));

        // Stage 2 runs on the stage-1 output; the two branches consume the
        // same sample so their outputs stay aligned.
        let s1 = stage1?;
        let open2 = self
            .open2_erode
            .push(s1)
            .and_then(|v| self.open2_dilate.push(v));
        let close2 = self
            .close2_dilate
            .push(s1)
            .and_then(|v| self.close2_erode.push(v));
        let (Some(o2), Some(c2)) = (open2, close2) else {
            return None;
        };
        let baseline = 0.5 * (o2 + c2);

        // Align the raw input with the baseline estimate.
        if self.input_delay.len() > self.total_delay {
            let delayed = self.input_delay.pop_front().expect("non-empty");
            Some(delayed - baseline)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{dilate, erode, MorphologicalFilter};

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / 360.0;
                0.4 * (2.0 * std::f64::consts::PI * 0.25 * t).sin()
                    + if i % 300 < 8 { 1.0 } else { 0.0 }
            })
            .collect()
    }

    #[test]
    fn sliding_extremum_matches_naive_window() {
        let signal = test_signal(500);
        for (kind, pick) in [
            (ExtremumKind::Min, f64::min as fn(f64, f64) -> f64),
            (ExtremumKind::Max, f64::max as fn(f64, f64) -> f64),
        ] {
            let mut tracker = SlidingExtremum::new(kind, 31);
            for (i, &s) in signal.iter().enumerate() {
                let got = tracker.push(s);
                let lo = i.saturating_sub(30);
                let expected = signal[lo..=i]
                    .iter()
                    .copied()
                    .reduce(pick)
                    .expect("non-empty window");
                assert_eq!(got, expected, "mismatch at sample {i} for {kind:?}");
            }
            assert_eq!(tracker.len(), signal.len() as u64);
            assert!(!tracker.is_empty());
        }
    }

    #[test]
    fn streaming_erosion_and_dilation_match_batch_in_the_interior() {
        let signal = test_signal(800);
        let size = 25;
        let batch_eroded = erode(&signal, size);
        let batch_dilated = dilate(&signal, size);

        let mut erosion = StreamingErosion::new(size);
        let mut dilation = StreamingDilation::new(size);
        let mut eroded = Vec::new();
        let mut dilated = Vec::new();
        for &s in &signal {
            if let Some(v) = erosion.push(s) {
                eroded.push(v);
            }
            if let Some(v) = dilation.push(s) {
                dilated.push(v);
            }
        }
        // Output k corresponds to input index k (the first `delay` pushes
        // produce nothing); the batch output at index k uses a symmetric
        // window, so they agree once k >= delay (full left context) and
        // k + delay < len (full right context).
        let delay = erosion.delay();
        for k in delay..(signal.len() - delay) {
            assert_eq!(eroded[k], batch_eroded[k], "erosion differs at {k}");
            assert_eq!(dilated[k], batch_dilated[k], "dilation differs at {k}");
        }
    }

    #[test]
    fn streaming_baseline_filter_matches_batch_away_from_borders() {
        let fs = 360.0;
        let signal = test_signal(3000);
        let batch = MorphologicalFilter::for_sampling_rate(fs)
            .apply(&signal)
            .expect("long enough");

        let mut streaming = StreamingBaselineFilter::for_sampling_rate(fs);
        let mut out = Vec::new();
        for &s in &signal {
            if let Some(v) = streaming.push(s) {
                out.push(v);
            }
        }
        assert!(
            out.len() + streaming.delay() <= signal.len() + 1,
            "streaming output longer than expected"
        );
        // Compare in the interior where both implementations have full
        // context. The streaming output index k corresponds to input k.
        let guard = 2 * streaming.delay();
        let mut compared = 0usize;
        for k in guard..out.len().saturating_sub(guard) {
            let diff = (out[k] - batch[k]).abs();
            assert!(
                diff < 1e-9,
                "streaming and batch baseline removal differ at {k}: {} vs {}",
                out[k],
                batch[k]
            );
            compared += 1;
        }
        assert!(compared > 500, "interior comparison region too small");
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_panics() {
        SlidingExtremum::new(ExtremumKind::Min, 0);
    }
}
