//! Streaming (sample-by-sample) versions of the conditioning kernels.
//!
//! The batch functions of [`crate::filter`] and [`crate::wavelet`] are
//! convenient for training and for record-level experiments, but the firmware
//! on the WBSN processes one ADC sample at a time with bounded memory. This
//! module provides the online equivalents:
//!
//! * [`SlidingExtremum`] — O(1) amortised sliding-window minimum/maximum
//!   (monotone-wedge algorithm), the primitive behind streaming erosion and
//!   dilation;
//! * [`StreamingErosion`] / [`StreamingDilation`] — centred structuring
//!   elements with a fixed group delay of `size/2` samples;
//! * [`StreamingBaselineFilter`] — the opening/closing baseline estimator of
//!   [`crate::filter::MorphologicalFilter`] as a push-based pipeline;
//! * [`StreamingWavelet`] — the à-trous dyadic wavelet transform of
//!   [`crate::wavelet::DyadicWavelet`] as a cascade of ring-buffered stages;
//! * [`StreamingPeakDetector`] — the wavelet cascade feeding the incremental
//!   [`PeakScanner`](crate::peak::PeakScanner), for online R-peak detection
//!   with pre-calibrated thresholds;
//! * [`StreamingDecimator`] — phase-anchored keep-one-in-N decimation;
//! * [`StreamingBeatWindower`] — fixed-length beat windows cut around
//!   detected peaks from a bounded ring buffer.
//!
//! Every operator exposes its **group delay** explicitly, and every operator
//! with a right-border obligation exposes a `finish` drain that reproduces
//! the batch implementation's border handling (clamped windows for the
//! morphological operators, symmetric reflection for the wavelet). As a
//! result the streaming chain is *bit-identical* to the batch chain over the
//! whole record — not merely in the interior — which is what lets the
//! firmware parity suite compare per-beat classifications exactly.
//!
//! Because every operator advances one sample per `push`, outputs are
//! invariant to how callers chunk their input: pushing a signal in one call,
//! sample by sample, or in ragged chunks yields identical output sequences
//! (property-tested in `tests/streaming_parity.rs`).

use std::collections::VecDeque;

use hbc_ecg::beat::BeatWindow;

use crate::peak::{PeakDetector, PeakScanner, PeakThresholds};
use crate::tape::Tape;

pub use crate::filter::ExtremumKind;

/// Sliding-window extremum over the last `window` pushed samples, computed in
/// O(1) amortised time with a monotone wedge.
#[derive(Debug, Clone)]
pub struct SlidingExtremum {
    kind: ExtremumKind,
    window: usize,
    /// (index, value) pairs forming a monotone sequence.
    wedge: VecDeque<(u64, f64)>,
    pushed: u64,
}

impl SlidingExtremum {
    /// Creates a tracker over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(kind: ExtremumKind, window: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        SlidingExtremum {
            kind,
            window,
            wedge: VecDeque::new(),
            pushed: 0,
        }
    }

    fn dominates(&self, kept: f64, incoming: f64) -> bool {
        // The same tie-keeps-the-earlier rule as the batch deque kernel of
        // `crate::filter`, which mirrors this wedge.
        self.kind.dominates(kept, incoming)
    }

    fn expire(&mut self) {
        while let Some(&(idx, _)) = self.wedge.front() {
            if idx + self.window as u64 <= self.pushed {
                self.wedge.pop_front();
            } else {
                break;
            }
        }
    }

    /// Pushes a sample and returns the extremum of the last `window` samples
    /// (fewer at the start of the stream).
    pub fn push(&mut self, value: f64) -> f64 {
        // Drop samples that left the window.
        self.expire();
        // Maintain monotonicity: remove dominated tail entries.
        while let Some(&(_, v)) = self.wedge.back() {
            if self.dominates(v, value) {
                break;
            }
            self.wedge.pop_back();
        }
        self.wedge.push_back((self.pushed, value));
        self.pushed += 1;
        self.wedge.front().map(|&(_, v)| v).expect("just pushed")
    }

    /// Advances the window **without** pushing a new sample and returns the
    /// extremum of the samples still covered, or `None` once none remain.
    ///
    /// This drains the right border at end of stream: the window degrades
    /// from centred to right-clamped exactly like the batch operators of
    /// [`crate::filter`], whose windows are truncated at the signal end.
    pub fn skip(&mut self) -> Option<f64> {
        self.expire();
        self.pushed += 1;
        self.wedge.front().map(|&(_, v)| v)
    }

    /// Number of window advances so far — one per [`Self::push`] **plus**
    /// one per [`Self::skip`], so after a right-border drain this exceeds
    /// the number of samples pushed.
    pub fn len(&self) -> u64 {
        self.pushed
    }

    /// Whether the window has never advanced.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }
}

/// One streaming morphological operator: a sliding extremum plus the
/// bookkeeping aligning outputs to the centre of the structuring element.
#[derive(Debug, Clone)]
struct Morph {
    extremum: SlidingExtremum,
    delay: usize,
    seen: usize,
    emitted: usize,
}

impl Morph {
    fn new(kind: ExtremumKind, size: usize) -> Self {
        // Both the batch and the streaming operator derive their geometry
        // from the single even-`size` normalisation point, so an even
        // structuring element yields the same `size + 1`-sample window on
        // both paths.
        let window = crate::filter::effective_window(size);
        Morph {
            extremum: SlidingExtremum::new(kind, window),
            delay: window / 2,
            seen: 0,
            emitted: 0,
        }
    }

    fn push(&mut self, value: f64) -> Option<f64> {
        let out = self.extremum.push(value);
        self.seen += 1;
        if self.seen > self.delay {
            self.emitted += 1;
            Some(out)
        } else {
            None
        }
    }

    /// Drains one pending right-border output (the operator owes exactly
    /// `delay` outputs at end of stream, fewer if the stream was shorter
    /// than the delay). The shrinking window reproduces the batch
    /// operator's end-of-signal clamping sample for sample.
    fn finish_one(&mut self) -> Option<f64> {
        if self.emitted >= self.seen {
            return None;
        }
        self.emitted += 1;
        Some(self.extremum.skip().expect("window still covers the tail"))
    }
}

macro_rules! impl_streaming_morph {
    ($name:ident, $kind:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: Morph,
        }

        impl $name {
            /// Creates the operator for a structuring element of `size`
            /// samples.
            ///
            /// # Panics
            ///
            /// Panics if `size == 0`.
            pub fn new(size: usize) -> Self {
                assert!(size > 0, "structuring element must be non-empty");
                Self {
                    inner: Morph::new($kind, size),
                }
            }

            /// Group delay (samples) between an input and the output that
            /// corresponds to it.
            pub fn delay(&self) -> usize {
                self.inner.delay
            }

            /// Pushes one sample; returns the output aligned to the sample
            /// pushed `delay()` calls ago, or `None` while the pipeline is
            /// still filling.
            pub fn push(&mut self, value: f64) -> Option<f64> {
                self.inner.push(value)
            }

            /// Drains one of the `delay()` outputs still owed at end of
            /// stream (right-clamped windows, matching the batch border
            /// handling); `None` once fully drained.
            pub fn finish_one(&mut self) -> Option<f64> {
                self.inner.finish_one()
            }
        }
    };
}

impl_streaming_morph!(
    StreamingErosion,
    ExtremumKind::Min,
    "Streaming erosion with a centred flat structuring element of `size`\n\
     samples: the output for input sample `n` is produced `size/2` samples\n\
     later (the group delay), matching [`crate::filter::erode`] exactly once\n\
     the right border is drained with [`StreamingErosion::finish_one`]."
);
impl_streaming_morph!(
    StreamingDilation,
    ExtremumKind::Max,
    "Streaming dilation with a centred flat structuring element (see\n\
     [`StreamingErosion`])."
);

/// Streaming baseline-wander filter: opening followed by closing with the
/// short (QRS) structuring element, then the average of opening and closing
/// with the long (beat) element, subtracted from the delayed input — the
/// same computation as [`crate::filter::MorphologicalFilter`], expressed as a
/// push pipeline with a fixed total latency of [`Self::delay`] samples.
///
/// After [`Self::finish_into`] has drained the right border, the complete
/// output sequence is bit-identical to the batch filter over the whole
/// signal (the warm-up of each sliding window reproduces the batch
/// operators' left clamping, the drain their right clamping).
#[derive(Debug, Clone)]
pub struct StreamingBaselineFilter {
    /// Stage 1: opening (erode, dilate) then closing (dilate, erode) with
    /// the QRS element, chained.
    stage1: [Morph; 4],
    /// Stage 2, in parallel on the stage-1 output: opening (erode, dilate)
    /// and closing (dilate, erode) with the beat element.
    open2: [Morph; 2],
    close2: [Morph; 2],
    /// Delay line aligning the raw input with the baseline estimate.
    input_delay: VecDeque<f64>,
    total_delay: usize,
    finished: bool,
}

impl StreamingBaselineFilter {
    /// Builds the streaming filter for a sampling rate, using the same
    /// structuring-element durations as the batch filter.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive.
    pub fn for_sampling_rate(fs: f64) -> Self {
        let batch = crate::filter::MorphologicalFilter::for_sampling_rate(fs);
        let qrs_half = batch.qrs_element / 2;
        let beat_half = batch.beat_element / 2;
        let total_delay = 4 * qrs_half + 2 * beat_half;
        StreamingBaselineFilter {
            stage1: [
                Morph::new(ExtremumKind::Min, batch.qrs_element),
                Morph::new(ExtremumKind::Max, batch.qrs_element),
                Morph::new(ExtremumKind::Max, batch.qrs_element),
                Morph::new(ExtremumKind::Min, batch.qrs_element),
            ],
            open2: [
                Morph::new(ExtremumKind::Min, batch.beat_element),
                Morph::new(ExtremumKind::Max, batch.beat_element),
            ],
            close2: [
                Morph::new(ExtremumKind::Max, batch.beat_element),
                Morph::new(ExtremumKind::Min, batch.beat_element),
            ],
            input_delay: VecDeque::new(),
            total_delay,
            finished: false,
        }
    }

    /// Total group delay of the pipeline, in samples.
    pub fn delay(&self) -> usize {
        self.total_delay
    }

    fn push_stage1_from(&mut self, value: f64, from: usize) -> Option<f64> {
        let mut v = value;
        for m in &mut self.stage1[from..] {
            v = m.push(v)?;
        }
        Some(v)
    }

    fn push_stage2(&mut self, s1: f64) -> Option<f64> {
        let open = self.open2[0].push(s1).and_then(|v| self.open2[1].push(v));
        let close = self.close2[0].push(s1).and_then(|v| self.close2[1].push(v));
        match (open, close) {
            (Some(o), Some(c)) => Some(0.5 * (o + c)),
            // Both branches share one delay, so they warm up in lockstep.
            (None, None) => None,
            _ => unreachable!("stage-2 branches have identical delays"),
        }
    }

    fn emit(&mut self, baseline: f64) -> Option<f64> {
        // Align the raw input with the baseline estimate.
        if self.input_delay.len() > self.total_delay {
            let delayed = self.input_delay.pop_front().expect("non-empty");
            Some(delayed - baseline)
        } else {
            None
        }
    }

    /// `emit` for the drain phase: no further inputs arrive, so every
    /// remaining baseline value pairs with the oldest delayed input.
    fn emit_tail(&mut self, baseline: f64) -> Option<f64> {
        self.input_delay
            .pop_front()
            .map(|delayed| delayed - baseline)
    }

    /// Pushes one raw sample; returns the baseline-corrected sample aligned
    /// to the input pushed `delay()` calls ago, once the pipeline has filled.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Self::finish_into`].
    pub fn push(&mut self, value: f64) -> Option<f64> {
        assert!(!self.finished, "push after finish");
        self.input_delay.push_back(value);
        let s1 = self.push_stage1_from(value, 0)?;
        let baseline = self.push_stage2(s1)?;
        self.emit(baseline)
    }

    /// Drains the `delay()` outputs still owed at end of stream into `out`,
    /// reproducing the batch filter's right-border clamping, and seals the
    /// filter. For streams shorter than the group delay this produces one
    /// output per input pushed (the batch filter would reject such signals
    /// outright). Idempotent: a second call appends nothing.
    pub fn finish_into(&mut self, out: &mut Vec<f64>) {
        if self.finished {
            return;
        }
        self.finished = true;
        // Drain stage 1 front to back: outputs of each operator continue
        // through the remainder of the chain and into stage 2.
        for idx in 0..self.stage1.len() {
            while let Some(v) = self.stage1[idx].finish_one() {
                if let Some(s1) = self.push_stage1_from(v, idx + 1) {
                    if let Some(baseline) = self.push_stage2(s1) {
                        if let Some(y) = self.emit_tail(baseline) {
                            out.push(y);
                        }
                    }
                }
            }
        }
        // Stage 1 fully drained: both stage-2 branches now hold the complete
        // intermediate signal. Drain them in lockstep.
        let mut open_tail: VecDeque<f64> = VecDeque::new();
        while let Some(v) = self.open2[0].finish_one() {
            if let Some(v) = self.open2[1].push(v) {
                open_tail.push_back(v);
            }
        }
        while let Some(v) = self.open2[1].finish_one() {
            open_tail.push_back(v);
        }
        let mut close_tail: VecDeque<f64> = VecDeque::new();
        while let Some(v) = self.close2[0].finish_one() {
            if let Some(v) = self.close2[1].push(v) {
                close_tail.push_back(v);
            }
        }
        while let Some(v) = self.close2[1].finish_one() {
            close_tail.push_back(v);
        }
        debug_assert_eq!(open_tail.len(), close_tail.len());
        while let (Some(o), Some(c)) = (open_tail.pop_front(), close_tail.pop_front()) {
            let baseline = 0.5 * (o + c);
            if let Some(y) = self.emit_tail(baseline) {
                out.push(y);
            }
        }
        debug_assert!(
            self.input_delay.is_empty(),
            "drain left {} unmatched inputs",
            self.input_delay.len()
        );
    }
}

/// One à-trous stage: spacing `2^s`, producing the scale-`s+1` detail and
/// the next approximation from a bounded tape of its input.
#[derive(Debug, Clone)]
struct WaveletStage {
    spacing: usize,
    tape: Tape,
    next_out: usize,
    /// Input-stream length, once known (enables right-border reflection).
    n: Option<usize>,
}

impl WaveletStage {
    fn new(spacing: usize) -> Self {
        WaveletStage {
            spacing,
            tape: Tape::default(),
            next_out: 0,
            n: None,
        }
    }

    fn avail(&self) -> usize {
        self.tape.end()
    }

    /// Tape lookup with the symmetric border extension of
    /// [`crate::wavelet`]: indices are reflected at 0 and (once `n` is
    /// known) at the stream end. Before `finish`, the emission condition
    /// guarantees no right-border access, and a left index `-k` reflects to
    /// `k < avail` in one step.
    fn get(&self, index: isize) -> f64 {
        let mut i = index;
        match self.n {
            Some(1) => i = 0,
            Some(n) => {
                let n = n as isize;
                loop {
                    if i < 0 {
                        i = -i;
                    } else if i >= n {
                        i = 2 * (n - 1) - i;
                    } else {
                        break;
                    }
                }
            }
            None => {
                if i < 0 {
                    i = -i;
                }
            }
        }
        self.tape.get(i as usize)
    }

    /// Detail and approximation at output index `o` — the same expressions,
    /// in the same order, as the batch `high_pass` / `low_pass` filters.
    fn compute(&mut self, o: usize) -> (f64, f64) {
        let s = self.spacing as isize;
        let o = o as isize;
        let detail = 2.0 * (self.get(o + s) - self.get(o));
        let x0 = self.get(o - s);
        let x1 = self.get(o);
        let x2 = self.get(o + s);
        let x3 = self.get(o + 2 * s);
        let approx = (x0 + 3.0 * x1 + 3.0 * x2 + x3) / 8.0;
        self.next_out += 1;
        // Future outputs look back `spacing`; right-border reflection can
        // reach back a further `spacing + 1`.
        self.tape
            .trim(self.next_out.saturating_sub(2 * self.spacing + 1));
        (detail, approx)
    }

    fn push(&mut self, v: f64) -> Option<(f64, f64)> {
        self.tape.push(v);
        // Emitting output `o` requires input `o + 2*spacing`; one push can
        // unlock at most one output.
        if self.avail() > self.next_out + 2 * self.spacing {
            Some(self.compute(self.next_out))
        } else {
            None
        }
    }

    fn finish_one(&mut self) -> Option<(f64, f64)> {
        let n = self.n.expect("finish_one before set_n");
        if self.next_out >= n {
            return None;
        }
        Some(self.compute(self.next_out))
    }
}

/// A multi-scale coefficient frame produced by [`StreamingWavelet`]: the
/// detail coefficient of every scale at one sample index, plus the input
/// sample at that index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveletFrame<'a> {
    /// Sample index of this frame in the input stream.
    pub index: usize,
    /// The input sample at `index`.
    pub input: f64,
    /// Detail coefficients, one per scale (scale 1 first).
    pub details: &'a [f64],
}

/// Push-based à-trous dyadic wavelet transform: the cascade of
/// [`crate::wavelet::DyadicWavelet`] expressed as ring-buffered stages.
///
/// Frames become available [`Self::lookahead`] samples after the
/// corresponding input (each stage of spacing `2^s` needs `2·2^s` samples of
/// lookahead). The left border uses the same symmetric reflection as the
/// batch transform; calling [`Self::finish`] reflects the right border, so
/// the complete frame sequence is bit-identical to
/// [`DyadicWavelet::transform`](crate::wavelet::DyadicWavelet::transform)
/// over the whole signal.
#[derive(Debug, Clone)]
pub struct StreamingWavelet {
    stages: Vec<WaveletStage>,
    /// Per-scale details not yet assembled into frames.
    details: Vec<VecDeque<f64>>,
    /// Input samples not yet assembled into frames.
    raw: VecDeque<f64>,
    /// Reusable assembled-frame buffer.
    frame: Vec<f64>,
    frame_index: usize,
    pushed: usize,
    finished: bool,
}

impl StreamingWavelet {
    /// Streaming transform with `scales` dyadic scales.
    ///
    /// # Panics
    ///
    /// Panics if `scales == 0`.
    pub fn new(scales: usize) -> Self {
        assert!(scales > 0, "at least one scale is required");
        StreamingWavelet {
            stages: (0..scales).map(|s| WaveletStage::new(1 << s)).collect(),
            details: vec![VecDeque::new(); scales],
            raw: VecDeque::new(),
            frame: vec![0.0; scales],
            frame_index: 0,
            pushed: 0,
            finished: false,
        }
    }

    /// Number of scales computed per frame.
    pub fn scales(&self) -> usize {
        self.stages.len()
    }

    /// Group delay: a frame for input index `k` is available once input
    /// `k + lookahead()` has been pushed (`Σ 2·2^s = 2·(2^scales − 1)`).
    pub fn lookahead(&self) -> usize {
        2 * ((1 << self.scales()) - 1)
    }

    fn feed(&mut self, from: usize, value: f64) {
        let mut v = value;
        for s in from..self.stages.len() {
            match self.stages[s].push(v) {
                Some((d, a)) => {
                    self.details[s].push_back(d);
                    v = a;
                }
                None => break,
            }
        }
    }

    /// Pushes one input sample through the cascade.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Self::finish`].
    pub fn push(&mut self, value: f64) {
        assert!(!self.finished, "push after finish");
        self.raw.push_back(value);
        self.pushed += 1;
        self.feed(0, value);
    }

    /// Declares the end of the stream and drains the remaining frames using
    /// the batch transform's right-border reflection. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let n = self.pushed;
        for s in 0..self.stages.len() {
            self.stages[s].n = Some(n);
            while let Some((d, a)) = self.stages[s].finish_one() {
                self.details[s].push_back(d);
                self.feed(s + 1, a);
            }
        }
    }

    /// Assembles and returns the next complete frame, if every scale has
    /// produced its coefficient for that index.
    pub fn pop_frame(&mut self) -> Option<WaveletFrame<'_>> {
        if self.details.iter().any(VecDeque::is_empty) {
            return None;
        }
        for (f, d) in self.frame.iter_mut().zip(&mut self.details) {
            *f = d.pop_front().expect("checked non-empty");
        }
        let input = self.raw.pop_front().expect("one raw sample per frame");
        let index = self.frame_index;
        self.frame_index += 1;
        Some(WaveletFrame {
            index,
            input,
            details: &self.frame,
        })
    }
}

/// Online R-peak detection: [`StreamingWavelet`] frames feeding the
/// incremental [`PeakScanner`] — the *same* state machine the batch
/// [`PeakDetector::detect`] drives, so both paths take identical decisions
/// by construction.
///
/// The detector runs on pre-calibrated [`PeakThresholds`] (see
/// [`PeakDetector::calibrate`]): a deployed node calibrates during an
/// initial observation window, then scans with the thresholds held fixed.
/// Peaks are emitted in ascending position order with a latency bounded by
/// [`Self::delay`] samples.
#[derive(Debug, Clone)]
pub struct StreamingPeakDetector {
    wavelet: StreamingWavelet,
    scanner: PeakScanner,
    refractory: usize,
}

impl StreamingPeakDetector {
    /// Builds the online detector for the configuration of `detector` with
    /// fixed, pre-calibrated thresholds.
    pub fn new(detector: &PeakDetector, thresholds: PeakThresholds) -> Self {
        StreamingPeakDetector {
            wavelet: StreamingWavelet::new(detector.config().scales),
            scanner: detector.scanner(thresholds),
            refractory: detector.refractory_samples(),
        }
    }

    /// Upper bound on the emission latency, in samples: wavelet lookahead +
    /// scan lookahead + the refractory hold-back before a peak is final.
    pub fn delay(&self) -> usize {
        self.wavelet.lookahead() + self.scanner.lookahead() + self.refractory
    }

    fn drain_frames(&mut self) {
        while let Some(frame) = self.wavelet.pop_frame() {
            self.scanner.push(frame.details, frame.input);
        }
    }

    /// Pushes one baseline-corrected sample.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Self::finish`].
    pub fn push(&mut self, filtered: f64) {
        self.wavelet.push(filtered);
        self.drain_frames();
    }

    /// Declares the end of the stream: remaining wavelet frames are drained
    /// with right-border reflection and the scan is run to completion.
    pub fn finish(&mut self) {
        self.wavelet.finish();
        self.drain_frames();
        self.scanner.finish();
    }

    /// Next finalized peak position (ascending), if any.
    pub fn pop_peak(&mut self) -> Option<usize> {
        self.scanner.pop_peak()
    }
}

/// Phase-anchored keep-one-in-N decimation: emits the samples at positions
/// `0, factor, 2·factor, …` relative to the most recent [`Self::reset`].
///
/// Re-anchoring at every beat window start is what makes the firmware's
/// decimation *phase-correct*: the decimation grid is locked to the R peak
/// (matching the batch `step_by` over the extracted window) instead of
/// free-running over the record, so the classifier sees the same 50-sample
/// vector regardless of where in the stream the beat occurred.
#[derive(Debug, Clone)]
pub struct StreamingDecimator {
    factor: usize,
    phase: usize,
}

impl StreamingDecimator {
    /// Creates a decimator keeping one sample in `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(factor: usize) -> Self {
        assert!(factor > 0, "decimation factor must be non-zero");
        StreamingDecimator { factor, phase: 0 }
    }

    /// The decimation factor.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Re-anchors the decimation grid: the next pushed sample is kept.
    pub fn reset(&mut self) {
        self.phase = 0;
    }

    /// Pushes one sample; returns it when it falls on the decimation grid.
    pub fn push(&mut self, value: f64) -> Option<f64> {
        let keep = self.phase == 0;
        self.phase += 1;
        if self.phase == self.factor {
            self.phase = 0;
        }
        keep.then_some(value)
    }
}

/// Streaming beat windower: buffers the most recent stretch of the
/// (filtered) signal in a bounded ring buffer and cuts fixed-length windows
/// around peak positions as they are finalized by the detector.
///
/// Peaks must be pushed in ascending order. Peaks whose window would start
/// before the stream (closer than `window.pre` to sample 0) are skipped,
/// mirroring the batch [`crate::window::windows_at_peaks`]; peaks whose
/// window has slid out of the ring buffer (detector latency exceeding the
/// configured history) are dropped and counted — with a history of at least
/// `window.pre + detector delay` this never happens.
#[derive(Debug, Clone)]
pub struct StreamingBeatWindower {
    window: BeatWindow,
    history: usize,
    tape: Tape,
    pending: VecDeque<usize>,
    skipped_border: usize,
    dropped_history: usize,
}

impl StreamingBeatWindower {
    /// Creates a windower keeping at least `history` samples of context.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or `history < window.len()`.
    pub fn new(window: BeatWindow, history: usize) -> Self {
        assert!(!window.is_empty(), "beat window must be non-empty");
        assert!(
            history >= window.len(),
            "history must cover at least one window"
        );
        StreamingBeatWindower {
            window,
            history,
            tape: Tape::default(),
            pending: VecDeque::new(),
            skipped_border: 0,
            dropped_history: 0,
        }
    }

    /// The window geometry being cut.
    pub fn window(&self) -> BeatWindow {
        self.window
    }

    /// Number of samples pushed so far.
    pub fn samples_seen(&self) -> usize {
        self.tape.end()
    }

    /// Peaks skipped because their window would precede the stream start
    /// (the batch path skips these borders identically).
    pub fn skipped_border(&self) -> usize {
        self.skipped_border
    }

    /// Peaks dropped because their window had already left the ring buffer
    /// when they arrived (history configured too small for the detector
    /// latency).
    pub fn dropped_history(&self) -> usize {
        self.dropped_history
    }

    /// Pushes one signal sample.
    pub fn push_sample(&mut self, value: f64) {
        self.tape.push(value);
        // Retain `history` samples, and never evict the window of a pending
        // peak.
        let mut keep = self.tape.end().saturating_sub(self.history);
        if let Some(&p) = self.pending.front() {
            keep = keep.min(p.saturating_sub(self.window.pre));
        }
        self.tape.trim(keep);
    }

    /// Registers a finalized peak position (ascending order).
    pub fn push_peak(&mut self, peak: usize) {
        debug_assert!(
            self.pending.back().is_none_or(|&b| b <= peak),
            "peaks must arrive in ascending order"
        );
        self.pending.push_back(peak);
    }

    /// Cuts the next ready window into `out` (cleared first), returning its
    /// peak position; `None` when no pending peak has full context yet.
    pub fn pop_window(&mut self, out: &mut Vec<f64>) -> Option<usize> {
        loop {
            let &peak = self.pending.front()?;
            if peak < self.window.pre {
                self.pending.pop_front();
                self.skipped_border += 1;
                continue;
            }
            if peak + self.window.post > self.tape.end() {
                // The right context has not streamed in yet.
                return None;
            }
            let start = peak - self.window.pre;
            if start < self.tape.base() {
                self.pending.pop_front();
                self.dropped_history += 1;
                continue;
            }
            self.pending.pop_front();
            out.clear();
            self.tape.extend_into(start, self.window.len(), out);
            return Some(peak);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{dilate, erode, MorphologicalFilter};
    use crate::wavelet::DyadicWavelet;
    use hbc_ecg::noise::NoiseModel;
    use hbc_ecg::record::Lead;
    use hbc_ecg::synthetic::SyntheticEcg;

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / 360.0;
                0.4 * (2.0 * std::f64::consts::PI * 0.25 * t).sin()
                    + if i % 300 < 8 { 1.0 } else { 0.0 }
            })
            .collect()
    }

    #[test]
    fn sliding_extremum_matches_naive_window() {
        let signal = test_signal(500);
        for (kind, pick) in [
            (ExtremumKind::Min, f64::min as fn(f64, f64) -> f64),
            (ExtremumKind::Max, f64::max as fn(f64, f64) -> f64),
        ] {
            let mut tracker = SlidingExtremum::new(kind, 31);
            for (i, &s) in signal.iter().enumerate() {
                let got = tracker.push(s);
                let lo = i.saturating_sub(30);
                let expected = signal[lo..=i]
                    .iter()
                    .copied()
                    .reduce(pick)
                    .expect("non-empty window");
                assert_eq!(got, expected, "mismatch at sample {i} for {kind:?}");
            }
            assert_eq!(tracker.len(), signal.len() as u64);
            assert!(!tracker.is_empty());
        }
    }

    #[test]
    fn sliding_extremum_with_window_one_is_the_identity() {
        let signal = test_signal(64);
        let mut tracker = SlidingExtremum::new(ExtremumKind::Min, 1);
        for &s in &signal {
            assert_eq!(tracker.push(s), s);
        }
        // Skipping with window 1 immediately exhausts the window.
        assert_eq!(tracker.skip(), None);
    }

    #[test]
    fn streaming_erosion_and_dilation_match_batch_everywhere() {
        let signal = test_signal(800);
        let size = 25;
        let batch_eroded = erode(&signal, size);
        let batch_dilated = dilate(&signal, size);

        let mut erosion = StreamingErosion::new(size);
        let mut dilation = StreamingDilation::new(size);
        let mut eroded = Vec::new();
        let mut dilated = Vec::new();
        for &s in &signal {
            if let Some(v) = erosion.push(s) {
                eroded.push(v);
            }
            if let Some(v) = dilation.push(s) {
                dilated.push(v);
            }
        }
        // The warm-up reproduces the batch left clamping; the drain
        // reproduces the right clamping. Full-signal equality, bit for bit.
        while let Some(v) = erosion.finish_one() {
            eroded.push(v);
        }
        while let Some(v) = dilation.finish_one() {
            dilated.push(v);
        }
        assert_eq!(eroded, batch_eroded);
        assert_eq!(dilated, batch_dilated);
    }

    #[test]
    fn even_structuring_elements_pin_batch_and_streaming_to_one_semantics() {
        // The even-`size` asymmetry is normalised in exactly one place
        // (`filter::effective_window`): an even element behaves as the next
        // odd one, identically on the batch and streaming paths.
        let signal = test_signal(400);
        for even in [2usize, 4, 24, 72] {
            let batch_even = erode(&signal, even);
            assert_eq!(batch_even, erode(&signal, even + 1), "size {even}");
            let mut erosion = StreamingErosion::new(even);
            let mut dilation = StreamingDilation::new(even);
            assert_eq!(erosion.delay(), even / 2);
            let mut eroded = Vec::new();
            let mut dilated = Vec::new();
            for &s in &signal {
                eroded.extend(erosion.push(s));
                dilated.extend(dilation.push(s));
            }
            while let Some(v) = erosion.finish_one() {
                eroded.push(v);
            }
            while let Some(v) = dilation.finish_one() {
                dilated.push(v);
            }
            assert_eq!(eroded, batch_even, "streaming erosion, size {even}");
            assert_eq!(
                dilated,
                dilate(&signal, even),
                "streaming dilation, size {even}"
            );
        }
    }

    #[test]
    fn streaming_morph_with_unit_element_is_the_identity_with_zero_delay() {
        let signal = test_signal(40);
        let mut erosion = StreamingErosion::new(1);
        assert_eq!(erosion.delay(), 0);
        for &s in &signal {
            assert_eq!(erosion.push(s), Some(s));
        }
        assert_eq!(erosion.finish_one(), None);
    }

    #[test]
    fn streaming_baseline_filter_is_bit_identical_to_batch() {
        let fs = 360.0;
        let signal = test_signal(3000);
        let batch = MorphologicalFilter::for_sampling_rate(fs)
            .apply(&signal)
            .expect("long enough");

        let mut streaming = StreamingBaselineFilter::for_sampling_rate(fs);
        let mut out = Vec::new();
        for &s in &signal {
            if let Some(v) = streaming.push(s) {
                out.push(v);
            }
        }
        assert_eq!(out.len() + streaming.delay(), signal.len());
        streaming.finish_into(&mut out);
        assert_eq!(out.len(), batch.len());
        // Same comparisons, same arithmetic, same order: exact equality.
        for (k, (a, b)) in out.iter().zip(&batch).enumerate() {
            assert_eq!(a, b, "streaming and batch filters differ at sample {k}");
        }
    }

    #[test]
    fn baseline_filter_on_a_stream_shorter_than_its_delay() {
        // The batch filter rejects signals shorter than its structuring
        // elements; the streaming filter emits nothing while running and
        // produces one best-effort output per input at finish.
        let mut streaming = StreamingBaselineFilter::for_sampling_rate(360.0);
        let short = test_signal(25);
        assert!(short.len() < streaming.delay());
        for &s in &short {
            assert_eq!(streaming.push(s), None);
        }
        let mut out = Vec::new();
        streaming.finish_into(&mut out);
        assert_eq!(out.len(), short.len());
        assert!(out.iter().all(|v| v.is_finite()));
        // A second finish appends nothing.
        streaming.finish_into(&mut out);
        assert_eq!(out.len(), short.len());
    }

    #[test]
    fn streaming_wavelet_is_bit_identical_to_batch_transform() {
        let signal = test_signal(700);
        let scales = 4;
        let batch = DyadicWavelet::with_scales(scales)
            .transform(&signal)
            .expect("long enough");

        let mut streaming = StreamingWavelet::new(scales);
        assert_eq!(streaming.lookahead(), 30);
        let mut got: Vec<Vec<f64>> = vec![Vec::new(); scales];
        let mut indices = Vec::new();
        let mut inputs = Vec::new();
        for &s in &signal {
            streaming.push(s);
            while let Some(frame) = streaming.pop_frame() {
                indices.push(frame.index);
                inputs.push(frame.input);
                for (acc, &d) in got.iter_mut().zip(frame.details) {
                    acc.push(d);
                }
            }
        }
        streaming.finish();
        while let Some(frame) = streaming.pop_frame() {
            indices.push(frame.index);
            inputs.push(frame.input);
            for (acc, &d) in got.iter_mut().zip(frame.details) {
                acc.push(d);
            }
        }
        assert_eq!(indices, (0..signal.len()).collect::<Vec<_>>());
        assert_eq!(inputs, signal, "frames carry the aligned input sample");
        for (scale, (g, b)) in got.iter().zip(&batch).enumerate() {
            assert_eq!(g.len(), b.len(), "scale {scale} length");
            for (k, (x, y)) in g.iter().zip(b).enumerate() {
                assert_eq!(x, y, "scale {scale} differs at index {k}");
            }
        }
    }

    #[test]
    fn streaming_wavelet_handles_streams_shorter_than_its_lookahead() {
        let signal = test_signal(9);
        let mut streaming = StreamingWavelet::new(4);
        for &s in &signal {
            streaming.push(s);
            assert!(streaming.pop_frame().is_none());
        }
        streaming.finish();
        let mut frames = 0;
        while let Some(frame) = streaming.pop_frame() {
            assert!(frame.details.iter().all(|d| d.is_finite()));
            frames += 1;
        }
        assert_eq!(frames, signal.len());
    }

    #[test]
    fn streaming_peak_detector_matches_batch_detection() {
        let mut gen = SyntheticEcg::with_seed(17).with_noise(NoiseModel::ambulatory());
        let rhythm = gen.rhythm(40, 0.15, 0.1);
        let record = gen.record(6, &rhythm, 1).expect("record");
        let raw = record.lead(Lead(0)).expect("lead 0");
        let filtered = MorphologicalFilter::for_sampling_rate(record.fs)
            .apply(raw)
            .expect("filter");

        let detector = PeakDetector::new(record.fs);
        let reference = detector.detect(&filtered).expect("batch detection");
        assert!(reference.len() >= 30, "enough beats to compare");

        let thresholds = detector.calibrate(&filtered).expect("calibrate");
        let mut streaming = StreamingPeakDetector::new(&detector, thresholds);
        let mut peaks = Vec::new();
        for &s in &filtered {
            streaming.push(s);
            while let Some(p) = streaming.pop_peak() {
                peaks.push(p);
            }
        }
        streaming.finish();
        while let Some(p) = streaming.pop_peak() {
            peaks.push(p);
        }
        assert_eq!(peaks, reference);
        assert!(streaming.delay() > 0);
    }

    #[test]
    fn decimator_keeps_the_anchored_grid() {
        let signal: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut dec = StreamingDecimator::new(4);
        assert_eq!(dec.factor(), 4);
        let kept: Vec<f64> = signal.iter().filter_map(|&s| dec.push(s)).collect();
        assert_eq!(kept, vec![0.0, 4.0, 8.0, 12.0, 16.0]);
        // Re-anchoring restarts the grid mid-stream.
        dec.reset();
        let kept: Vec<f64> = signal[2..8].iter().filter_map(|&s| dec.push(s)).collect();
        assert_eq!(kept, vec![2.0, 6.0]);
        // Factor 1 keeps everything.
        let mut unit = StreamingDecimator::new(1);
        assert!(signal.iter().all(|&s| unit.push(s) == Some(s)));
    }

    #[test]
    #[should_panic(expected = "decimation factor")]
    fn zero_decimation_factor_panics() {
        StreamingDecimator::new(0);
    }

    #[test]
    fn windower_cuts_windows_and_skips_borders() {
        let window = BeatWindow::new(3, 2);
        let mut w = StreamingBeatWindower::new(window, 16);
        let signal: Vec<f64> = (0..30).map(|i| i as f64).collect();
        // Peak at 1 is too close to the stream start; peaks at 10 and 20
        // have full context.
        for (i, &s) in signal.iter().enumerate() {
            w.push_sample(s);
            if i == 4 {
                w.push_peak(1);
                w.push_peak(10);
            }
            if i == 21 {
                w.push_peak(20);
            }
        }
        let mut out = Vec::new();
        assert_eq!(w.pop_window(&mut out), Some(10));
        assert_eq!(out, vec![7.0, 8.0, 9.0, 10.0, 11.0]);
        assert_eq!(w.pop_window(&mut out), Some(20));
        assert_eq!(out, vec![17.0, 18.0, 19.0, 20.0, 21.0]);
        assert_eq!(w.pop_window(&mut out), None);
        assert_eq!(w.skipped_border(), 1);
        assert_eq!(w.dropped_history(), 0);
        assert_eq!(w.samples_seen(), 30);
        assert_eq!(w.window(), window);
    }

    #[test]
    fn windower_waits_for_right_context_and_reports_stale_peaks() {
        let window = BeatWindow::new(2, 3);
        let mut w = StreamingBeatWindower::new(window, 5);
        for i in 0..4 {
            w.push_sample(i as f64);
        }
        w.push_peak(3);
        let mut out = Vec::new();
        // post = 3 ⇒ needs samples up to index 5: not yet streamed.
        assert_eq!(w.pop_window(&mut out), None);
        for i in 4..20 {
            w.push_sample(i as f64);
        }
        assert_eq!(w.pop_window(&mut out), Some(3));
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        // With no pending peak pinning the buffer, streaming on evicts old
        // samples; a peak arriving for the evicted past is dropped and
        // counted.
        for i in 20..60 {
            w.push_sample(i as f64);
        }
        w.push_peak(6);
        assert_eq!(w.pop_window(&mut out), None);
        assert_eq!(w.dropped_history(), 1);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_panics() {
        SlidingExtremum::new(ExtremumKind::Min, 0);
    }
}
