//! Reusable working buffers for the batch conditioning front-end.
//!
//! The conditioning chain — morphological baseline removal
//! ([`crate::filter`]) followed by the à-trous wavelet decomposition
//! ([`crate::wavelet`]) — dominates record-processing time, and its naive
//! formulation allocated a fresh `Vec` per operator pass. A
//! [`FrontendScratch`] owns every intermediate the chain needs (the monotone
//! wedge of the deque morphology kernel, the morphology stage buffers, the
//! wavelet approximation ping-pong pair and the detail planes of the peak
//! detector), so the `_into` variants of the front-end —
//! [`crate::filter::erode_into`] and friends,
//! [`MorphologicalFilter::apply_into`](crate::filter::MorphologicalFilter::apply_into),
//! [`DyadicWavelet::transform_into`](crate::wavelet::DyadicWavelet::transform_into)
//! and
//! [`PeakDetector::detect_with_scratch`](crate::peak::PeakDetector::detect_with_scratch)
//! — allocate nothing once the buffers have grown to size
//! (`tests/frontend_alloc.rs` counts allocations to enforce this).
//!
//! ## Ownership and threading rules
//!
//! A scratch belongs to **one worker at a time**: the buffers carry no
//! results between calls (every `_into` clears its outputs first) but are
//! freely clobbered by each call, so sharing one scratch across threads is a
//! data race by construction and is prevented by `&mut` in the API. The
//! established pattern (mirroring `BeatScratch` in `hbc-embedded`):
//!
//! * batch loops hold one scratch for the whole loop
//!   (`WbsnFirmware::process_record` reuses one across every lead of the
//!   record);
//! * parallel drivers keep a pool bounded by the worker count
//!   (`hbc_core::engine::Engine::process_records`);
//! * long-lived services own one per session or guard one with a lock
//!   (`hbc_core::stream::StreamHub` calibration).

use std::collections::VecDeque;

/// Scratch buffers for the allocation-free conditioning front-end.
///
/// `Default`-constructed empty; every buffer grows to its steady-state size
/// on first use and is then reused. See the module docs for ownership rules.
#[derive(Debug, Clone, Default)]
pub struct FrontendScratch {
    /// Monotone wedge of the deque sliding-extremum kernel (sample indices).
    pub(crate) wedge: VecDeque<usize>,
    /// Morphology stage buffers (erosion/dilation intermediates).
    pub(crate) stage_a: Vec<f64>,
    /// Second morphology stage buffer.
    pub(crate) stage_b: Vec<f64>,
    /// Third morphology stage buffer (the opening of the smoothing stage
    /// must outlive the closing that shares its input).
    pub(crate) stage_c: Vec<f64>,
    /// Wavelet approximation buffer (current scale input).
    pub(crate) approx: Vec<f64>,
    /// Wavelet approximation buffer (next scale), swapped with `approx`.
    pub(crate) approx_next: Vec<f64>,
    /// Per-scale wavelet detail planes (peak-detection path).
    pub(crate) details: Vec<Vec<f64>>,
    /// One multi-scale coefficient frame (peak-detection scan).
    pub(crate) frame: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_starts_empty_and_is_cloneable() {
        let scratch = FrontendScratch::default();
        assert!(scratch.wedge.is_empty());
        assert!(scratch.stage_a.is_empty());
        let clone = scratch.clone();
        assert!(clone.details.is_empty());
    }
}
