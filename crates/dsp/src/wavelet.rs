//! À-trous dyadic wavelet transform.
//!
//! The peak detector of the paper (taken from Rincón et al.) decomposes the
//! ECG into four dyadic scales of a quadratic-spline wavelet using the
//! *algorithme à trous*: at scale `j`, the signal is convolved with the
//! derivative-of-smoothing filter whose taps are spaced by `2^(j-1)` zeros.
//! QRS complexes produce a positive-maximum / negative-minimum pair across
//! all four scales, whose zero crossing on the first scale marks the R peak.
//!
//! The filters used here are the classic Mallat quadratic-spline pair also
//! used by the Martínez et al. wavelet delineator:
//!
//! * low-pass  `h = (1/8)·[1, 3, 3, 1]`
//! * high-pass `g = 2·[1, −1]`
//!
//! Because the taps are tiny integers, the transform can run with shifts and
//! additions on the WBSN; the floating-point implementation below is used for
//! training and verification, and `hbc-embedded` meters its integer cost.

use crate::frontend::FrontendScratch;
use crate::{DspError, Result};

/// Number of dyadic scales used by the peak detector of the paper.
pub const DEFAULT_SCALES: usize = 4;

/// À-trous dyadic wavelet transform with the quadratic-spline filter pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DyadicWavelet {
    /// Number of scales to compute.
    pub scales: usize,
}

impl DyadicWavelet {
    /// Transform with the paper's four scales.
    pub fn new() -> Self {
        DyadicWavelet {
            scales: DEFAULT_SCALES,
        }
    }

    /// Transform with a custom number of scales.
    ///
    /// # Panics
    ///
    /// Panics if `scales == 0`.
    pub fn with_scales(scales: usize) -> Self {
        assert!(scales > 0, "at least one scale is required");
        DyadicWavelet { scales }
    }

    /// Minimum signal length the transform accepts for its configured scales
    /// (the largest filter support).
    pub fn minimum_length(&self) -> usize {
        // Largest spacing is 2^(scales-1); the low-pass filter spans
        // 3*spacing+1 samples.
        3 * (1 << (self.scales - 1)) + 1
    }

    /// Computes the wavelet detail coefficients at every scale.
    ///
    /// Returns one vector per scale, each the same length as the input.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the input is shorter than
    /// [`Self::minimum_length`].
    pub fn transform(&self, signal: &[f64]) -> Result<Vec<Vec<f64>>> {
        let mut details = Vec::with_capacity(self.scales);
        self.transform_into(signal, &mut FrontendScratch::default(), &mut details)?;
        Ok(details)
    }

    /// [`Self::transform`] against caller-owned scratch: the approximation
    /// cascade ping-pongs between two scratch buffers and `details` is
    /// resized/cleared in place, so repeated transforms allocate nothing once
    /// every buffer has grown to size. The filter expressions and their
    /// evaluation order are identical to [`Self::transform`], so the
    /// coefficients agree bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the input is shorter than
    /// [`Self::minimum_length`].
    pub fn transform_into(
        &self,
        signal: &[f64],
        scratch: &mut FrontendScratch,
        details: &mut Vec<Vec<f64>>,
    ) -> Result<()> {
        if signal.len() < self.minimum_length() {
            return Err(DspError::SignalTooShort {
                required: self.minimum_length(),
                provided: signal.len(),
            });
        }
        details.resize_with(self.scales, Vec::new);
        let FrontendScratch {
            approx,
            approx_next,
            ..
        } = scratch;
        approx.clear();
        approx.extend_from_slice(signal);
        for (scale, detail) in details.iter_mut().enumerate() {
            let spacing = 1usize << scale;
            high_pass_into(approx, spacing, detail);
            low_pass_into(approx, spacing, approx_next);
            std::mem::swap(approx, approx_next);
        }
        Ok(())
    }
}

impl Default for DyadicWavelet {
    fn default() -> Self {
        DyadicWavelet::new()
    }
}

/// High-pass (detail) filter `g = 2·[1, −1]` with à-trous spacing, symmetric
/// border handling. `out` is cleared and refilled.
fn high_pass_into(signal: &[f64], spacing: usize, out: &mut Vec<f64>) {
    let n = signal.len();
    out.clear();
    out.reserve(n);
    for i in 0..n {
        let a = signal[reflect(i as isize + spacing as isize, n)];
        let b = signal[i];
        out.push(2.0 * (a - b));
    }
}

/// Low-pass (smoothing) filter `h = (1/8)·[1, 3, 3, 1]` with à-trous spacing,
/// symmetric border handling. `out` is cleared and refilled.
fn low_pass_into(signal: &[f64], spacing: usize, out: &mut Vec<f64>) {
    let n = signal.len();
    let s = spacing as isize;
    out.clear();
    out.reserve(n);
    for i in 0..n {
        let i = i as isize;
        let x0 = signal[reflect(i - s, n)];
        let x1 = signal[reflect(i, n)];
        let x2 = signal[reflect(i + s, n)];
        let x3 = signal[reflect(i + 2 * s, n)];
        out.push((x0 + 3.0 * x1 + 3.0 * x2 + x3) / 8.0);
    }
}

/// Reflects an index into `[0, n)` (symmetric border extension).
fn reflect(i: isize, n: usize) -> usize {
    let n = n as isize;
    let mut i = i;
    if n == 1 {
        return 0;
    }
    loop {
        if i < 0 {
            i = -i;
        } else if i >= n {
            i = 2 * (n - 1) - i;
        } else {
            return i as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflect_handles_borders() {
        assert_eq!(reflect(-1, 10), 1);
        assert_eq!(reflect(-3, 10), 3);
        assert_eq!(reflect(0, 10), 0);
        assert_eq!(reflect(9, 10), 9);
        assert_eq!(reflect(10, 10), 8);
        assert_eq!(reflect(12, 10), 6);
        assert_eq!(reflect(5, 1), 0);
    }

    #[test]
    fn constant_signal_has_zero_detail() {
        let w = DyadicWavelet::new();
        let signal = vec![3.3; 256];
        let details = w.transform(&signal).expect("long enough");
        assert_eq!(details.len(), 4);
        for d in &details {
            assert!(d.iter().all(|&v| v.abs() < 1e-12));
        }
    }

    #[test]
    fn linear_ramp_has_constant_detail() {
        // The detail filter is a first difference, so a ramp gives a constant
        // (away from the borders).
        let w = DyadicWavelet::with_scales(1);
        let signal: Vec<f64> = (0..128).map(|i| 0.5 * i as f64).collect();
        let d = &w.transform(&signal).expect("ok")[0];
        for &v in &d[2..120] {
            assert!(
                (v - 1.0).abs() < 1e-9,
                "2*(x[i+1]-x[i]) = 2*0.5 = 1, got {v}"
            );
        }
    }

    #[test]
    fn step_edge_produces_extremum_pair_across_scales() {
        // A sharp edge (like the QRS upstroke) must produce a large response
        // at every scale, centred near the edge.
        let mut signal = vec![0.0; 256];
        for s in signal.iter_mut().skip(128) {
            *s = 1.0;
        }
        let w = DyadicWavelet::new();
        let details = w.transform(&signal).expect("ok");
        for (scale, d) in details.iter().enumerate() {
            let (argmax, max) =
                d.iter().enumerate().fold(
                    (0, f64::MIN),
                    |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc },
                );
            assert!(max > 0.5, "scale {scale} should respond to the edge");
            assert!(
                (argmax as isize - 128).unsigned_abs() <= (2 << scale),
                "scale {scale} extremum at {argmax}, too far from the edge"
            );
        }
    }

    #[test]
    fn transform_into_matches_transform_bit_for_bit() {
        let w = DyadicWavelet::new();
        let signal: Vec<f64> = (0..300)
            .map(|i| (i as f64 * 0.11).sin() + 0.3 * (i as f64 * 0.031).cos())
            .collect();
        let reference = w.transform(&signal).expect("long enough");
        // One scratch and one details buffer reused across calls, including a
        // scale-count change in between (the buffers must resize correctly).
        let mut scratch = FrontendScratch::default();
        let mut details = Vec::new();
        for scales in [4, 2, 4] {
            let w = DyadicWavelet::with_scales(scales);
            w.transform_into(&signal, &mut scratch, &mut details)
                .expect("long enough");
            assert_eq!(details.len(), scales);
            let fresh = w.transform(&signal).expect("long enough");
            assert_eq!(details, fresh, "scales = {scales}");
        }
        assert_eq!(details, reference);
    }

    #[test]
    fn too_short_signal_is_rejected() {
        let w = DyadicWavelet::new();
        assert_eq!(w.minimum_length(), 25);
        assert!(matches!(
            w.transform(&[0.0; 10]),
            Err(DspError::SignalTooShort { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one scale")]
    fn zero_scales_panics() {
        DyadicWavelet::with_scales(0);
    }

    #[test]
    fn scales_increasingly_smooth_high_frequencies() {
        // Alternating signal: the first scale responds strongly, the fourth
        // barely at all (its filters span many samples).
        let signal: Vec<f64> = (0..256)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let details = DyadicWavelet::new().transform(&signal).expect("ok");
        let energy = |d: &[f64]| d.iter().map(|v| v * v).sum::<f64>();
        assert!(
            energy(&details[0]) > 10.0 * energy(&details[3]),
            "scale 1 energy {} should dominate scale 4 energy {}",
            energy(&details[0]),
            energy(&details[3])
        );
    }
}
