//! Wavelet-based R-peak detection.
//!
//! The peak detector of the paper (Section IV-A, taken from Rincón et al.)
//! decomposes the filtered ECG into four dyadic wavelet scales and searches
//! for couples of maximum–minimum wavelet extrema that appear *across* the
//! scales; the R peak is then located at the zero crossing of the first-scale
//! coefficients between the two extrema. A refractory period suppresses
//! double detections inside a physiologically impossible interval.
//!
//! The scan itself is implemented once, as the incremental [`PeakScanner`]
//! state machine consuming one multi-scale coefficient frame at a time from a
//! bounded ring buffer. The batch [`PeakDetector::detect`] drives the scanner
//! over a whole record; the streaming front-end
//! ([`crate::streaming::StreamingPeakDetector`]) drives the *same* scanner
//! one sample at a time, so the two paths agree by construction.
//!
//! Detection thresholds are derived from the RMS of the wavelet detail
//! coefficients. The batch path computes them over the record it is given; an
//! online node cannot know that quantity ahead of time, so the thresholds are
//! factored out as [`PeakThresholds`] — calibrated once (e.g. over the first
//! seconds of signal, or on the host before deployment) and then held fixed,
//! exactly like the calibration phase of a real firmware.

use std::collections::VecDeque;

use crate::frontend::FrontendScratch;
use crate::tape::Tape;
use crate::wavelet::DyadicWavelet;
use crate::{DspError, Result};

/// Configuration of the wavelet peak detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakDetectorConfig {
    /// Number of wavelet scales used for the cross-scale confirmation.
    pub scales: usize,
    /// Fraction of the running RMS of the first-scale coefficients used as
    /// the detection threshold.
    pub threshold_factor: f64,
    /// Minimum distance between two detected peaks, in seconds (refractory
    /// period; 200 ms by default, the physiological minimum).
    pub refractory_s: f64,
    /// How many scales (out of `scales`) must confirm an extremum pair.
    pub min_scales_agreeing: usize,
}

impl Default for PeakDetectorConfig {
    fn default() -> Self {
        PeakDetectorConfig {
            scales: 4,
            threshold_factor: 1.5,
            refractory_s: 0.2,
            min_scales_agreeing: 3,
        }
    }
}

/// Detection thresholds, one per wavelet scale, derived from the coefficient
/// RMS of a calibration signal (see [`PeakDetector::calibrate`]).
///
/// `first_scale` gates candidate extrema on scale 1; `cross_scale[s - 1]`
/// (for scale `s ≥ 2`) is the level a coarser scale must exceed near the
/// candidate pair to count as agreeing.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakThresholds {
    /// Threshold on the first-scale coefficients.
    pub first_scale: f64,
    /// Thresholds for the cross-scale confirmation (scales 2..).
    pub cross_scale: Vec<f64>,
}

/// Wavelet-based QRS / R-peak detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakDetector {
    config: PeakDetectorConfig,
    fs: f64,
}

impl PeakDetector {
    /// Creates a detector for signals sampled at `fs` Hz with the default
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive.
    pub fn new(fs: f64) -> Self {
        Self::with_config(fs, PeakDetectorConfig::default())
    }

    /// Creates a detector with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive, `scales == 0` or
    /// `min_scales_agreeing > scales`.
    pub fn with_config(fs: f64, config: PeakDetectorConfig) -> Self {
        assert!(fs > 0.0, "sampling frequency must be positive");
        assert!(config.scales > 0, "at least one scale is required");
        assert!(
            config.min_scales_agreeing >= 1 && config.min_scales_agreeing <= config.scales,
            "min_scales_agreeing must be within [1, scales]"
        );
        PeakDetector { config, fs }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PeakDetectorConfig {
        &self.config
    }

    /// Sampling frequency the detector was built for, in Hz.
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Refractory period in samples.
    pub fn refractory_samples(&self) -> usize {
        (self.config.refractory_s * self.fs).round() as usize
    }

    /// Maximum span of a QRS modulus-maxima pair, in samples (~80 ms).
    pub fn pair_window_samples(&self) -> usize {
        (0.08 * self.fs).round() as usize
    }

    /// Derives fixed detection thresholds from the wavelet detail
    /// coefficients of a calibration signal (the per-scale RMS scaled by the
    /// configured threshold factor).
    pub fn thresholds_from_details(&self, details: &[Vec<f64>]) -> PeakThresholds {
        let rms = |d: &[f64]| (d.iter().map(|v| v * v).sum::<f64>() / d.len() as f64).sqrt();
        PeakThresholds {
            first_scale: self.config.threshold_factor * rms(&details[0]),
            cross_scale: details
                .iter()
                .skip(1)
                .map(|d| self.config.threshold_factor * rms(d))
                .collect(),
        }
    }

    /// Computes [`PeakThresholds`] from a calibration signal (typically the
    /// baseline-filtered classification lead, or its first seconds).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal cannot support
    /// the wavelet decomposition.
    pub fn calibrate(&self, signal: &[f64]) -> Result<PeakThresholds> {
        self.calibrate_with_scratch(signal, &mut FrontendScratch::default())
    }

    /// [`Self::calibrate`] against caller-owned scratch: the wavelet detail
    /// planes live in `scratch` and are reused across calls, so repeated
    /// calibrations (e.g. per-session start-up in a serving hub) do not
    /// re-allocate the decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal cannot support
    /// the wavelet decomposition.
    pub fn calibrate_with_scratch(
        &self,
        signal: &[f64],
        scratch: &mut FrontendScratch,
    ) -> Result<PeakThresholds> {
        let wavelet = DyadicWavelet::with_scales(self.config.scales);
        // The detail planes live in the scratch too; take them out so the
        // scratch can be threaded into the transform (plain moves, no
        // allocation).
        let mut details = std::mem::take(&mut scratch.details);
        let transformed = wavelet.transform_into(signal, scratch, &mut details);
        let thresholds = transformed.map(|()| self.thresholds_from_details(&details));
        scratch.details = details;
        thresholds
    }

    /// Creates the incremental scan state machine for these thresholds.
    pub fn scanner(&self, thresholds: PeakThresholds) -> PeakScanner {
        PeakScanner::new(
            self.config.scales,
            self.config.min_scales_agreeing,
            thresholds,
            self.refractory_samples(),
            self.pair_window_samples(),
        )
    }

    /// Detects R peaks in `signal`, returning their sample indices in
    /// ascending order.
    ///
    /// Thresholds are calibrated over `signal` itself, then the incremental
    /// [`PeakScanner`] consumes the coefficient frames in order — the same
    /// state machine the streaming front-end drives sample by sample.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal cannot support the
    /// wavelet decomposition.
    pub fn detect(&self, signal: &[f64]) -> Result<Vec<usize>> {
        self.detect_with_scratch(signal, &mut FrontendScratch::default())
    }

    /// [`Self::detect`] against caller-owned scratch: the wavelet
    /// decomposition and the scan frame are computed into reused scratch
    /// buffers, so record-processing loops pay no per-record transform
    /// allocation. (The scanner's own bounded ring buffers and the returned
    /// peak vector still allocate — they are small and peak-count-bound, not
    /// signal-length-bound.)
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal cannot support
    /// the wavelet decomposition.
    pub fn detect_with_scratch(
        &self,
        signal: &[f64],
        scratch: &mut FrontendScratch,
    ) -> Result<Vec<usize>> {
        let wavelet = DyadicWavelet::with_scales(self.config.scales);
        let mut details = std::mem::take(&mut scratch.details);
        let transformed = wavelet.transform_into(signal, scratch, &mut details);
        let result = transformed.and_then(|()| {
            let n = details[0].len();
            if n < 4 {
                return Err(DspError::SignalTooShort {
                    required: 4,
                    provided: n,
                });
            }
            let thresholds = self.thresholds_from_details(&details);
            let mut frame = std::mem::take(&mut scratch.frame);
            let peaks = self.scan_details(signal, &details, thresholds, &mut frame);
            scratch.frame = frame;
            Ok(peaks)
        });
        scratch.details = details;
        result
    }

    /// Runs the scan over precomputed detail coefficients with explicit
    /// thresholds (the deployment split: calibrate once, scan forever).
    pub fn detect_with_thresholds(
        &self,
        signal: &[f64],
        details: &[Vec<f64>],
        thresholds: PeakThresholds,
    ) -> Vec<usize> {
        self.scan_details(signal, details, thresholds, &mut Vec::new())
    }

    /// The shared scan loop: drives the incremental [`PeakScanner`] over the
    /// coefficient planes, assembling one frame at a time into `frame`.
    fn scan_details(
        &self,
        signal: &[f64],
        details: &[Vec<f64>],
        thresholds: PeakThresholds,
        frame: &mut Vec<f64>,
    ) -> Vec<usize> {
        let mut scanner = self.scanner(thresholds);
        frame.clear();
        frame.resize(self.config.scales, 0.0);
        for (i, &s) in signal.iter().enumerate() {
            for (f, d) in frame.iter_mut().zip(details) {
                *f = d[i];
            }
            scanner.push(frame, s);
        }
        scanner.finish();
        let mut peaks = Vec::new();
        while let Some(p) = scanner.pop_peak() {
            peaks.push(p);
        }
        peaks
    }
}

/// Incremental R-peak scan over multi-scale wavelet coefficient frames.
///
/// The scanner consumes one frame per input sample — the detail coefficients
/// of every scale at that index plus the (filtered) signal sample itself —
/// and emits finalized peak positions. All state lives in bounded ring
/// buffers: the history required is `refractory + 2 × pair_window + O(1)`
/// samples, and a scan index is only processed once `2 × pair_window + 2`
/// samples of lookahead are buffered (or the stream has been [`finished`]),
/// at which point its decision is exactly the one the whole-record scan
/// would take.
///
/// A detected peak is held back until it can no longer be displaced by a
/// larger peak inside the refractory period, so the emission latency is
/// bounded by `refractory + 2 × pair_window + 2` frames.
///
/// [`finished`]: PeakScanner::finish
#[derive(Debug, Clone)]
pub struct PeakScanner {
    scales: usize,
    min_scales_agreeing: usize,
    thresholds: PeakThresholds,
    refractory: usize,
    pair_window: usize,
    /// One tape per scale of detail coefficients.
    details: Vec<Tape>,
    /// The signal driving amplitude comparisons inside the refractory rule.
    signal: Tape,
    /// Frames received so far.
    avail: usize,
    /// Total stream length, once `finish` has been called.
    n: Option<usize>,
    /// Next scan index to process.
    i: usize,
    /// Most recent accepted peak, and whether it has been emitted.
    last: Option<usize>,
    last_emitted: bool,
    /// Finalized peaks awaiting `pop_peak`.
    out: VecDeque<usize>,
}

impl PeakScanner {
    fn new(
        scales: usize,
        min_scales_agreeing: usize,
        thresholds: PeakThresholds,
        refractory: usize,
        pair_window: usize,
    ) -> Self {
        assert_eq!(
            thresholds.cross_scale.len(),
            scales - 1,
            "one cross-scale threshold per scale beyond the first"
        );
        PeakScanner {
            scales,
            min_scales_agreeing,
            thresholds,
            refractory,
            pair_window,
            details: vec![Tape::default(); scales],
            signal: Tape::default(),
            avail: 0,
            n: None,
            i: 1, // index 0 can never be a local extremum
            last: None,
            last_emitted: false,
            out: VecDeque::new(),
        }
    }

    /// Number of lookahead frames the scanner buffers before deciding a scan
    /// index (away from the end of the stream).
    pub fn lookahead(&self) -> usize {
        2 * self.pair_window + 2
    }

    /// Feeds the coefficient frame of the next sample: `details[s]` is the
    /// scale-`s` detail coefficient at this index, `signal` the (filtered)
    /// input sample at the same index.
    ///
    /// # Panics
    ///
    /// Panics if `details` does not hold one coefficient per scale, or if
    /// called after [`PeakScanner::finish`].
    pub fn push(&mut self, details: &[f64], signal: f64) {
        assert_eq!(details.len(), self.scales, "one coefficient per scale");
        assert!(self.n.is_none(), "push after finish");
        for (tape, &d) in self.details.iter_mut().zip(details) {
            tape.push(d);
        }
        self.signal.push(signal);
        self.avail += 1;
        self.pump();
    }

    /// Declares the end of the stream: remaining scan indices are processed
    /// with the end-of-record clamping of the batch scan, and the pending
    /// peak (if any) is finalized.
    pub fn finish(&mut self) {
        if self.n.is_some() {
            return;
        }
        self.n = Some(self.avail);
        self.pump();
        if let (Some(last), false) = (self.last, self.last_emitted) {
            self.out.push_back(last);
            self.last_emitted = true;
        }
    }

    /// Next finalized peak position, in ascending order.
    pub fn pop_peak(&mut self) -> Option<usize> {
        self.out.pop_front()
    }

    fn pump(&mut self) {
        loop {
            match self.n {
                Some(n) => {
                    if self.i >= n {
                        break;
                    }
                }
                None => {
                    if self.avail < self.i + self.lookahead() {
                        break;
                    }
                }
            }
            // Once the scan passes `last + refractory`, every future
            // candidate zero crossing lies at or beyond the scan index, so
            // the pending peak can no longer be displaced: finalize it.
            if let (Some(last), false) = (self.last, self.last_emitted) {
                if self.i >= last + self.refractory {
                    self.out.push_back(last);
                    self.last_emitted = true;
                }
            }
            self.step();
        }
        // Bound the history: the scan looks back `pair_window` for the
        // cross-scale window and one sample for the extremum test; the
        // refractory amplitude comparison needs the signal at the pending
        // peak.
        let detail_keep = self.i.saturating_sub(self.pair_window + 2);
        for tape in &mut self.details {
            tape.trim(detail_keep);
        }
        let pending = match (self.last, self.last_emitted) {
            (Some(last), false) => last,
            _ => self.i,
        };
        self.signal.trim(pending.min(self.i).saturating_sub(2));
    }

    /// Effective stream length for clamping: unknown until `finish`, and the
    /// lookahead guard guarantees unfinished scans never reach a clamp.
    fn clamp_len(&self) -> usize {
        self.n.unwrap_or(usize::MAX)
    }

    fn is_local_extremum(&self, i: usize) -> bool {
        if i == 0 || i + 1 >= self.clamp_len() {
            return false;
        }
        let first = &self.details[0];
        let (a, b, c) = (first.get(i - 1), first.get(i), first.get(i + 1));
        (b >= a && b >= c) || (b <= a && b <= c)
    }

    /// Finds the zero crossing of the first scale between `a` and `b`
    /// (exclusive), returning the index whose value is closest to zero
    /// around the sign change.
    fn zero_crossing(&self, a: usize, b: usize) -> Option<usize> {
        let first = &self.details[0];
        for i in a..b {
            if first.get(i).signum() != first.get(i + 1).signum() {
                return Some(if first.get(i).abs() <= first.get(i + 1).abs() {
                    i
                } else {
                    i + 1
                });
            }
        }
        None
    }

    /// Processes exactly one scan index — the body of the batch `while`
    /// loop, with `i` advanced in place.
    fn step(&mut self) {
        let i = self.i;
        let n = self.clamp_len();
        let first = &self.details[0];
        let threshold = self.thresholds.first_scale;

        if first.get(i).abs() < threshold || !self.is_local_extremum(i) {
            self.i += 1;
            return;
        }
        // Look for an opposite-sign extremum within the pair window.
        let sign = self.details[0].get(i).signum();
        let end = (i + self.pair_window).min(n);
        let mut partner: Option<usize> = None;
        for j in (i + 1)..end {
            if self.details[0].get(j).signum() == -sign
                && self.details[0].get(j).abs() >= 0.5 * threshold
                && self.is_local_extremum(j)
            {
                partner = Some(j);
                break;
            }
        }
        let Some(j) = partner else {
            self.i += 1;
            return;
        };

        // Cross-scale confirmation: enough coarser scales must show a
        // significant response in the same neighbourhood.
        let mut agreeing = 1usize; // scale 1 agrees by construction
        for (d, &scale_threshold) in self
            .details
            .iter()
            .skip(1)
            .zip(&self.thresholds.cross_scale)
        {
            let lo = i.saturating_sub(self.pair_window);
            let hi = (j + self.pair_window).min(n).min(self.avail);
            let mut local_max = 0.0f64;
            for k in lo..hi {
                local_max = local_max.max(d.get(k).abs());
            }
            if local_max > scale_threshold {
                agreeing += 1;
            }
        }
        if agreeing < self.min_scales_agreeing {
            self.i += 1;
            return;
        }

        // R peak = zero crossing of the first scale between the pair.
        let zero = self.zero_crossing(i, j).unwrap_or((i + j) / 2);

        if let Some(last) = self.last {
            if zero < last + self.refractory {
                // Too close to the previous peak: keep the larger one. The
                // pending peak cannot have been emitted yet (emission
                // requires the scan index to have passed the refractory
                // window, and `zero ≥ i`).
                debug_assert!(!self.last_emitted, "displacing an emitted peak");
                let last_amp = self.signal.get(last).abs();
                let this_amp = self.signal.get(zero).abs();
                if this_amp > last_amp {
                    self.last = Some(zero);
                }
                self.i = j + 1;
                return;
            }
        }
        if let (Some(last), false) = (self.last, self.last_emitted) {
            self.out.push_back(last);
        }
        self.last = Some(zero);
        self.last_emitted = false;
        self.i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_ecg::noise::NoiseModel;
    use hbc_ecg::record::Lead;
    use hbc_ecg::synthetic::SyntheticEcg;
    use hbc_ecg::BeatClass;

    #[test]
    fn detects_peaks_in_a_clean_synthetic_record() {
        let mut gen = SyntheticEcg::with_seed(42).with_noise(NoiseModel::clean());
        let rhythm = vec![BeatClass::Normal; 20];
        let record = gen.record(1, &rhythm, 1).expect("record");
        let signal = record.lead(Lead(0)).expect("lead 0");
        let detector = PeakDetector::new(record.fs);
        let peaks = detector.detect(signal).expect("detection");
        assert_eq!(
            peaks.len(),
            record.annotations.len(),
            "every beat should be detected exactly once"
        );
        // Each detection within 50 ms of an annotation.
        let tolerance = (0.05 * record.fs) as isize;
        for ann in &record.annotations {
            let ok = peaks
                .iter()
                .any(|&p| (p as isize - ann.sample as isize).abs() <= tolerance);
            assert!(ok, "annotation at {} not matched by any peak", ann.sample);
        }
    }

    #[test]
    fn detects_peaks_with_ambulatory_noise_and_mixed_morphologies() {
        let mut gen = SyntheticEcg::with_seed(7).with_noise(NoiseModel::ambulatory());
        let rhythm = gen.rhythm(30, 0.15, 0.15);
        let record = gen.record(2, &rhythm, 1).expect("record");
        let signal = record.lead(Lead(0)).expect("lead 0");
        // Remove baseline wander first, as the WBSN pipeline does.
        let filtered = crate::filter::MorphologicalFilter::for_sampling_rate(record.fs)
            .apply(signal)
            .expect("filter");
        let peaks = PeakDetector::new(record.fs)
            .detect(&filtered)
            .expect("detect");
        let tolerance = (0.06 * record.fs) as isize;
        let matched = record
            .annotations
            .iter()
            .filter(|ann| {
                peaks
                    .iter()
                    .any(|&p| (p as isize - ann.sample as isize).abs() <= tolerance)
            })
            .count();
        let sensitivity = matched as f64 / record.annotations.len() as f64;
        assert!(
            sensitivity >= 0.9,
            "sensitivity {sensitivity} too low ({matched}/{} beats)",
            record.annotations.len()
        );
        // No more than a handful of false positives.
        assert!(
            peaks.len() <= record.annotations.len() + 3,
            "too many detections: {} for {} beats",
            peaks.len(),
            record.annotations.len()
        );
    }

    #[test]
    fn refractory_period_suppresses_double_detection() {
        let mut gen = SyntheticEcg::with_seed(3).with_noise(NoiseModel::clean());
        let record = gen.record(3, &[BeatClass::Normal; 10], 1).expect("record");
        let signal = record.lead(Lead(0)).expect("lead");
        let peaks = PeakDetector::new(record.fs).detect(signal).expect("detect");
        let refractory = (0.2 * record.fs) as usize;
        for w in peaks.windows(2) {
            assert!(
                w[1] - w[0] >= refractory,
                "peaks {} and {} too close",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn flat_signal_has_no_peaks() {
        let detector = PeakDetector::new(360.0);
        let peaks = detector.detect(&vec![0.0; 1000]).expect("ok");
        assert!(peaks.is_empty());
    }

    #[test]
    fn short_signal_is_an_error() {
        let detector = PeakDetector::new(360.0);
        assert!(matches!(
            detector.detect(&[0.0; 5]),
            Err(DspError::SignalTooShort { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "min_scales_agreeing")]
    fn invalid_config_panics() {
        let cfg = PeakDetectorConfig {
            min_scales_agreeing: 9,
            ..Default::default()
        };
        PeakDetector::with_config(360.0, cfg);
    }

    #[test]
    fn calibrated_thresholds_reproduce_detect() {
        // Splitting detection into calibrate + scan must not change the
        // result when the calibration signal is the record itself.
        let mut gen = SyntheticEcg::with_seed(11).with_noise(NoiseModel::ambulatory());
        let rhythm = gen.rhythm(25, 0.2, 0.1);
        let record = gen.record(4, &rhythm, 1).expect("record");
        let signal = record.lead(Lead(0)).expect("lead");
        let detector = PeakDetector::new(record.fs);
        let reference = detector.detect(signal).expect("detect");

        let wavelet = DyadicWavelet::with_scales(detector.config().scales);
        let details = wavelet.transform(signal).expect("transform");
        let thresholds = detector.calibrate(signal).expect("calibrate");
        let split = detector.detect_with_thresholds(signal, &details, thresholds);
        assert_eq!(split, reference);
    }

    #[test]
    fn scanner_is_insensitive_to_frame_batching() {
        // The scanner consumes frames one at a time; feeding the same frames
        // must give the same peaks as the batch driver regardless of how the
        // caller groups its pushes around other work.
        let mut gen = SyntheticEcg::with_seed(21).with_noise(NoiseModel::clean());
        let record = gen.record(5, &[BeatClass::Normal; 12], 1).expect("record");
        let signal = record.lead(Lead(0)).expect("lead");
        let detector = PeakDetector::new(record.fs);
        let reference = detector.detect(signal).expect("detect");

        let wavelet = DyadicWavelet::with_scales(detector.config().scales);
        let details = wavelet.transform(signal).expect("transform");
        let thresholds = detector.thresholds_from_details(&details);
        let mut scanner = detector.scanner(thresholds);
        let mut frame = vec![0.0; detector.config().scales];
        let mut peaks = Vec::new();
        for (i, &s) in signal.iter().enumerate() {
            for (f, d) in frame.iter_mut().zip(&details) {
                *f = d[i];
            }
            scanner.push(&frame, s);
            // Drain opportunistically mid-stream, as a firmware would.
            while let Some(p) = scanner.pop_peak() {
                peaks.push(p);
            }
        }
        scanner.finish();
        while let Some(p) = scanner.pop_peak() {
            peaks.push(p);
        }
        assert_eq!(peaks, reference);
    }

    #[test]
    fn zero_crossing_helper_finds_sign_change() {
        let mut scanner = PeakDetector::new(360.0).scanner(PeakThresholds {
            first_scale: f64::INFINITY,
            cross_scale: vec![f64::INFINITY; 3],
        });
        for &v in &[2.0, 1.0, 0.25, -0.5, -2.0] {
            scanner.push(&[v, 0.0, 0.0, 0.0], 0.0);
        }
        assert_eq!(scanner.zero_crossing(0, 4), Some(2));
        let mut rising = PeakDetector::new(360.0).scanner(PeakThresholds {
            first_scale: f64::INFINITY,
            cross_scale: vec![f64::INFINITY; 3],
        });
        for &v in &[1.0, 2.0, 3.0] {
            rising.push(&[v, 0.0, 0.0, 0.0], 0.0);
        }
        assert_eq!(rising.zero_crossing(0, 2), None);
    }
}
