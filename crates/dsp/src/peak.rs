//! Wavelet-based R-peak detection.
//!
//! The peak detector of the paper (Section IV-A, taken from Rincón et al.)
//! decomposes the filtered ECG into four dyadic wavelet scales and searches
//! for couples of maximum–minimum wavelet extrema that appear *across* the
//! scales; the R peak is then located at the zero crossing of the first-scale
//! coefficients between the two extrema. A refractory period suppresses
//! double detections inside a physiologically impossible interval.

use crate::wavelet::DyadicWavelet;
use crate::{DspError, Result};

/// Configuration of the wavelet peak detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakDetectorConfig {
    /// Number of wavelet scales used for the cross-scale confirmation.
    pub scales: usize,
    /// Fraction of the running RMS of the first-scale coefficients used as
    /// the detection threshold.
    pub threshold_factor: f64,
    /// Minimum distance between two detected peaks, in seconds (refractory
    /// period; 200 ms by default, the physiological minimum).
    pub refractory_s: f64,
    /// How many scales (out of `scales`) must confirm an extremum pair.
    pub min_scales_agreeing: usize,
}

impl Default for PeakDetectorConfig {
    fn default() -> Self {
        PeakDetectorConfig {
            scales: 4,
            threshold_factor: 1.5,
            refractory_s: 0.2,
            min_scales_agreeing: 3,
        }
    }
}

/// Wavelet-based QRS / R-peak detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakDetector {
    config: PeakDetectorConfig,
    fs: f64,
}

impl PeakDetector {
    /// Creates a detector for signals sampled at `fs` Hz with the default
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive.
    pub fn new(fs: f64) -> Self {
        Self::with_config(fs, PeakDetectorConfig::default())
    }

    /// Creates a detector with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive, `scales == 0` or
    /// `min_scales_agreeing > scales`.
    pub fn with_config(fs: f64, config: PeakDetectorConfig) -> Self {
        assert!(fs > 0.0, "sampling frequency must be positive");
        assert!(config.scales > 0, "at least one scale is required");
        assert!(
            config.min_scales_agreeing >= 1 && config.min_scales_agreeing <= config.scales,
            "min_scales_agreeing must be within [1, scales]"
        );
        PeakDetector { config, fs }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PeakDetectorConfig {
        &self.config
    }

    /// Detects R peaks in `signal`, returning their sample indices in
    /// ascending order.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal cannot support the
    /// wavelet decomposition.
    pub fn detect(&self, signal: &[f64]) -> Result<Vec<usize>> {
        let wavelet = DyadicWavelet::with_scales(self.config.scales);
        let details = wavelet.transform(signal)?;
        let first = &details[0];
        let n = first.len();
        if n < 4 {
            return Err(DspError::SignalTooShort {
                required: 4,
                provided: n,
            });
        }

        // Detection threshold from the RMS of the first scale.
        let rms = (first.iter().map(|v| v * v).sum::<f64>() / n as f64).sqrt();
        let threshold = self.config.threshold_factor * rms;
        let refractory = (self.config.refractory_s * self.fs).round() as usize;
        // A QRS modulus-maxima pair spans at most ~80 ms.
        let pair_window = (0.08 * self.fs).round() as usize;

        let mut peaks: Vec<usize> = Vec::new();
        let mut i = 1usize;
        while i < n {
            // Find a first-scale extremum exceeding the threshold.
            if first[i].abs() < threshold || !is_local_extremum(first, i) {
                i += 1;
                continue;
            }
            // Look for an opposite-sign extremum within the pair window.
            let sign = first[i].signum();
            let end = (i + pair_window).min(n);
            let mut partner: Option<usize> = None;
            for j in (i + 1)..end {
                if first[j].signum() == -sign
                    && first[j].abs() >= 0.5 * threshold
                    && is_local_extremum(first, j)
                {
                    partner = Some(j);
                    break;
                }
            }
            let Some(j) = partner else {
                i += 1;
                continue;
            };

            // Cross-scale confirmation: enough coarser scales must show a
            // significant response in the same neighbourhood.
            let mut agreeing = 1usize; // scale 1 agrees by construction
            for d in details.iter().skip(1) {
                let lo = i.saturating_sub(pair_window);
                let hi = (j + pair_window).min(n);
                let local_max = d[lo..hi].iter().fold(0.0f64, |a, &b| a.max(b.abs()));
                let scale_rms = (d.iter().map(|v| v * v).sum::<f64>() / n as f64).sqrt();
                if local_max > self.config.threshold_factor * scale_rms {
                    agreeing += 1;
                }
            }
            if agreeing < self.config.min_scales_agreeing {
                i += 1;
                continue;
            }

            // R peak = zero crossing of the first scale between the pair.
            let zero = zero_crossing(first, i, j).unwrap_or((i + j) / 2);

            if let Some(&last) = peaks.last() {
                if zero < last + refractory {
                    // Too close to the previous peak: keep the larger one.
                    let last_amp = signal[last].abs();
                    let this_amp = signal[zero].abs();
                    if this_amp > last_amp {
                        *peaks.last_mut().expect("non-empty") = zero;
                    }
                    i = j + 1;
                    continue;
                }
            }
            peaks.push(zero);
            i = j + 1;
        }
        Ok(peaks)
    }
}

fn is_local_extremum(x: &[f64], i: usize) -> bool {
    if i == 0 || i + 1 >= x.len() {
        return false;
    }
    (x[i] >= x[i - 1] && x[i] >= x[i + 1]) || (x[i] <= x[i - 1] && x[i] <= x[i + 1])
}

/// Finds the zero crossing of `x` between indices `a` and `b` (exclusive),
/// returning the index whose value is closest to zero around the sign change.
fn zero_crossing(x: &[f64], a: usize, b: usize) -> Option<usize> {
    for i in a..b {
        if x[i].signum() != x[i + 1].signum() {
            return Some(if x[i].abs() <= x[i + 1].abs() {
                i
            } else {
                i + 1
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbc_ecg::noise::NoiseModel;
    use hbc_ecg::record::Lead;
    use hbc_ecg::synthetic::SyntheticEcg;
    use hbc_ecg::BeatClass;

    #[test]
    fn detects_peaks_in_a_clean_synthetic_record() {
        let mut gen = SyntheticEcg::with_seed(42).with_noise(NoiseModel::clean());
        let rhythm = vec![BeatClass::Normal; 20];
        let record = gen.record(1, &rhythm, 1).expect("record");
        let signal = record.lead(Lead(0)).expect("lead 0");
        let detector = PeakDetector::new(record.fs);
        let peaks = detector.detect(signal).expect("detection");
        assert_eq!(
            peaks.len(),
            record.annotations.len(),
            "every beat should be detected exactly once"
        );
        // Each detection within 50 ms of an annotation.
        let tolerance = (0.05 * record.fs) as isize;
        for ann in &record.annotations {
            let ok = peaks
                .iter()
                .any(|&p| (p as isize - ann.sample as isize).abs() <= tolerance);
            assert!(ok, "annotation at {} not matched by any peak", ann.sample);
        }
    }

    #[test]
    fn detects_peaks_with_ambulatory_noise_and_mixed_morphologies() {
        let mut gen = SyntheticEcg::with_seed(7).with_noise(NoiseModel::ambulatory());
        let rhythm = gen.rhythm(30, 0.15, 0.15);
        let record = gen.record(2, &rhythm, 1).expect("record");
        let signal = record.lead(Lead(0)).expect("lead 0");
        // Remove baseline wander first, as the WBSN pipeline does.
        let filtered = crate::filter::MorphologicalFilter::for_sampling_rate(record.fs)
            .apply(signal)
            .expect("filter");
        let peaks = PeakDetector::new(record.fs)
            .detect(&filtered)
            .expect("detect");
        let tolerance = (0.06 * record.fs) as isize;
        let matched = record
            .annotations
            .iter()
            .filter(|ann| {
                peaks
                    .iter()
                    .any(|&p| (p as isize - ann.sample as isize).abs() <= tolerance)
            })
            .count();
        let sensitivity = matched as f64 / record.annotations.len() as f64;
        assert!(
            sensitivity >= 0.9,
            "sensitivity {sensitivity} too low ({matched}/{} beats)",
            record.annotations.len()
        );
        // No more than a handful of false positives.
        assert!(
            peaks.len() <= record.annotations.len() + 3,
            "too many detections: {} for {} beats",
            peaks.len(),
            record.annotations.len()
        );
    }

    #[test]
    fn refractory_period_suppresses_double_detection() {
        let mut gen = SyntheticEcg::with_seed(3).with_noise(NoiseModel::clean());
        let record = gen.record(3, &[BeatClass::Normal; 10], 1).expect("record");
        let signal = record.lead(Lead(0)).expect("lead");
        let peaks = PeakDetector::new(record.fs).detect(signal).expect("detect");
        let refractory = (0.2 * record.fs) as usize;
        for w in peaks.windows(2) {
            assert!(
                w[1] - w[0] >= refractory,
                "peaks {} and {} too close",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn flat_signal_has_no_peaks() {
        let detector = PeakDetector::new(360.0);
        let peaks = detector.detect(&vec![0.0; 1000]).expect("ok");
        assert!(peaks.is_empty());
    }

    #[test]
    fn short_signal_is_an_error() {
        let detector = PeakDetector::new(360.0);
        assert!(matches!(
            detector.detect(&[0.0; 5]),
            Err(DspError::SignalTooShort { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "min_scales_agreeing")]
    fn invalid_config_panics() {
        let cfg = PeakDetectorConfig {
            min_scales_agreeing: 9,
            ..Default::default()
        };
        PeakDetector::with_config(360.0, cfg);
    }

    #[test]
    fn zero_crossing_helper_finds_sign_change() {
        let x = [2.0, 1.0, 0.25, -0.5, -2.0];
        assert_eq!(zero_crossing(&x, 0, 4), Some(2));
        let y = [1.0, 2.0, 3.0];
        assert_eq!(zero_crossing(&y, 0, 2), None);
    }
}
