//! Morphological filtering of ECG signals.
//!
//! Ambulatory ECG is corrupted by baseline wander (respiration) and motion
//! artefacts. The embedded filtering stage of the paper (taken from Rincón et
//! al.) uses *mathematical morphology*: erosion and dilation with flat
//! structuring elements, combined into opening and closing, estimate the
//! baseline which is then subtracted from the signal. Morphological operators
//! need only comparisons — no multiplications — which is why they suit a
//! 6 MHz integer-only microcontroller.
//!
//! The baseline estimator follows the standard two-stage scheme:
//!
//! 1. opening followed by closing with a structuring element slightly longer
//!    than the QRS complex removes the beats and keeps the drift,
//! 2. a second pass with a longer element smooths the estimate,
//! 3. the estimate is subtracted from the input.
//!
//! ## The deque kernel
//!
//! Every operator is a sliding-window extremum, computed here with the
//! monotone-deque (van Herk / Gil–Werman style) kernel: a wedge of candidate
//! indices whose values are monotone, so each sample enters the wedge once
//! and leaves it at most once — O(n) total, ~[`DEQUE_COMPARISONS_PER_SAMPLE`]
//! comparisons per sample *independent of the window length*, against the
//! O(n·w) of the naive per-output window rescan (kept as
//! [`sliding_extreme_naive`], the equivalence oracle and the pre-deque cost
//! reference). It is the batch mirror of the streaming
//! [`SlidingExtremum`](crate::streaming::SlidingExtremum) wedge, with the
//! same clamped-border semantics, and since min/max are pure comparisons the
//! two formulations are *exactly* equal — `tests/frontend_equivalence.rs`
//! proptests this across window parities and border positions.
//!
//! ## Window normalisation
//!
//! A structuring element of `size` samples is centred on the output sample,
//! which only has a symmetric meaning for odd `size`. The effective window is
//! normalised in **one place** — [`effective_window`]: `2·(size/2) + 1`
//! samples, so an even `size` yields a `size + 1`-sample window. Batch and
//! streaming operators both derive their geometry from it and therefore
//! agree for every parity.

use std::collections::VecDeque;

use crate::frontend::FrontendScratch;
use crate::{DspError, Result};

/// Which extremum a sliding-window morphological operator tracks. Shared
/// with the streaming kernels (re-exported as
/// `streaming::ExtremumKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtremumKind {
    /// Sliding minimum (erosion).
    Min,
    /// Sliding maximum (dilation).
    Max,
}

impl ExtremumKind {
    /// Whether a retained wedge value still dominates an incoming one (ties
    /// keep the earlier sample, like the streaming wedge).
    #[inline]
    pub(crate) fn dominates(self, kept: f64, incoming: f64) -> bool {
        match self {
            ExtremumKind::Min => kept <= incoming,
            ExtremumKind::Max => kept >= incoming,
        }
    }
}

/// Number of erosion/dilation passes the baseline filter runs per input
/// sample: 2 openings + 2 closings, each an erosion followed by a dilation.
pub const MORPHOLOGY_PASSES: usize = 8;

/// Amortised comparisons per input sample of one deque-kernel pass,
/// independent of the structuring-element length: one wedge-domination test
/// per push (each sample is popped at most once, amortising the pop loop to
/// one extra comparison) plus one front-expiry test per output.
pub const DEQUE_COMPARISONS_PER_SAMPLE: usize = 3;

/// The effective (odd, centred) window of a structuring element of `size`
/// samples: `2·(size/2) + 1`. This is the **single normalisation point** for
/// the even-`size` asymmetry — an even `size` silently yields a
/// `size + 1`-sample window — used by the batch deque kernel, the naive
/// reference and the streaming operators alike, so all three agree for every
/// window parity.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn effective_window(size: usize) -> usize {
    assert!(size > 0, "structuring element must be non-empty");
    2 * (size / 2) + 1
}

/// Flat-structuring-element erosion: each output sample is the minimum of the
/// input over [`effective_window(size)`](effective_window) samples centred on
/// it (edges are clamped).
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn erode(signal: &[f64], size: usize) -> Vec<f64> {
    let mut out = Vec::new();
    erode_into(signal, size, &mut FrontendScratch::default(), &mut out);
    out
}

/// Flat-structuring-element dilation: each output sample is the maximum of
/// the input over [`effective_window(size)`](effective_window) samples
/// centred on it.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn dilate(signal: &[f64], size: usize) -> Vec<f64> {
    let mut out = Vec::new();
    dilate_into(signal, size, &mut FrontendScratch::default(), &mut out);
    out
}

/// [`erode`] against caller-owned scratch: `out` is cleared and refilled, and
/// nothing is allocated once the scratch has grown to size.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn erode_into(signal: &[f64], size: usize, scratch: &mut FrontendScratch, out: &mut Vec<f64>) {
    sliding_extreme_into(signal, size, ExtremumKind::Min, &mut scratch.wedge, out);
}

/// [`dilate`] against caller-owned scratch (see [`erode_into`]).
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn dilate_into(signal: &[f64], size: usize, scratch: &mut FrontendScratch, out: &mut Vec<f64>) {
    sliding_extreme_into(signal, size, ExtremumKind::Max, &mut scratch.wedge, out);
}

/// The O(n) monotone-deque sliding extremum. The wedge holds indices whose
/// values are monotone (front = current extremum); each index is pushed once
/// and popped at most once, so the whole pass is O(n) with
/// ~[`DEQUE_COMPARISONS_PER_SAMPLE`] comparisons per sample. Borders are
/// clamped exactly like the naive reference: output `i` covers
/// `[i−half, min(i+half+1, n))`.
fn sliding_extreme_into(
    signal: &[f64],
    size: usize,
    kind: ExtremumKind,
    wedge: &mut VecDeque<usize>,
    out: &mut Vec<f64>,
) {
    let half = effective_window(size) / 2;
    let n = signal.len();
    out.clear();
    wedge.clear();
    if n == 0 {
        return;
    }
    out.reserve(n);
    for j in 0..n {
        let incoming = signal[j];
        while let Some(&back) = wedge.back() {
            if kind.dominates(signal[back], incoming) {
                break;
            }
            wedge.pop_back();
        }
        wedge.push_back(j);
        if j >= half {
            let centre = j - half;
            emit_extremum(signal, centre, half, wedge, out);
        }
    }
    // Right border: the window clamps at the signal end and shrinks, exactly
    // like the naive reference (and the streaming operators' `finish` drain).
    for centre in n.saturating_sub(half.min(n))..n {
        emit_extremum(signal, centre, half, wedge, out);
    }
}

/// Expires wedge entries left of `centre − half` and emits the front value.
#[inline]
fn emit_extremum(
    signal: &[f64],
    centre: usize,
    half: usize,
    wedge: &mut VecDeque<usize>,
    out: &mut Vec<f64>,
) {
    while wedge.front().is_some_and(|&front| front + half < centre) {
        wedge.pop_front();
    }
    let front = *wedge
        .front()
        .expect("window always covers its newest index");
    out.push(signal[front]);
}

/// The naive O(n·w) sliding extremum: rescans the clamped window for every
/// output sample. Kept as the equivalence oracle for the deque kernel
/// (`tests/frontend_equivalence.rs`), the naive side of the
/// `frontend_throughput` bench, and the pre-deque reference of the embedded
/// cost model.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn sliding_extreme_naive(signal: &[f64], size: usize, kind: ExtremumKind) -> Vec<f64> {
    let (pick, identity): (fn(f64, f64) -> f64, f64) = match kind {
        ExtremumKind::Min => (f64::min, f64::INFINITY),
        ExtremumKind::Max => (f64::max, f64::NEG_INFINITY),
    };
    let half = effective_window(size) / 2;
    let n = signal.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let mut ext = identity;
        for &s in &signal[lo..hi] {
            ext = pick(ext, s);
        }
        out.push(ext);
    }
    out
}

/// Morphological opening: erosion followed by dilation. Removes upward peaks
/// narrower than the structuring element.
pub fn open(signal: &[f64], size: usize) -> Vec<f64> {
    let mut out = Vec::new();
    open_into(signal, size, &mut FrontendScratch::default(), &mut out);
    out
}

/// Morphological closing: dilation followed by erosion. Removes downward
/// spikes narrower than the structuring element.
pub fn close(signal: &[f64], size: usize) -> Vec<f64> {
    let mut out = Vec::new();
    close_into(signal, size, &mut FrontendScratch::default(), &mut out);
    out
}

/// [`open`] against caller-owned scratch (see [`erode_into`]).
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn open_into(signal: &[f64], size: usize, scratch: &mut FrontendScratch, out: &mut Vec<f64>) {
    let FrontendScratch { wedge, stage_a, .. } = scratch;
    sliding_extreme_into(signal, size, ExtremumKind::Min, wedge, stage_a);
    sliding_extreme_into(stage_a, size, ExtremumKind::Max, wedge, out);
}

/// [`close`] against caller-owned scratch (see [`erode_into`]).
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn close_into(signal: &[f64], size: usize, scratch: &mut FrontendScratch, out: &mut Vec<f64>) {
    let FrontendScratch { wedge, stage_a, .. } = scratch;
    sliding_extreme_into(signal, size, ExtremumKind::Max, wedge, stage_a);
    sliding_extreme_into(stage_a, size, ExtremumKind::Min, wedge, out);
}

/// Baseline-wander removal filter built from morphological opening/closing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorphologicalFilter {
    /// First structuring element length in samples (slightly longer than the
    /// QRS complex; the reference uses ≈0.2 s).
    pub qrs_element: usize,
    /// Second structuring element length in samples (longer than a full beat;
    /// the reference uses ≈0.53 s).
    pub beat_element: usize,
}

impl MorphologicalFilter {
    /// Filter tuned for a given sampling frequency, using the reference
    /// structuring-element durations (0.2 s and 0.53 s).
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive.
    pub fn for_sampling_rate(fs: f64) -> Self {
        assert!(fs > 0.0, "sampling frequency must be positive");
        MorphologicalFilter {
            qrs_element: ((0.2 * fs).round() as usize).max(1),
            beat_element: ((0.53 * fs).round() as usize).max(1),
        }
    }

    /// Estimates the baseline of `signal`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal is shorter than
    /// the longest structuring element.
    pub fn baseline(&self, signal: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.baseline_into(signal, &mut FrontendScratch::default(), &mut out)?;
        Ok(out)
    }

    /// [`Self::baseline`] against caller-owned scratch: the six intermediate
    /// passes live in `scratch` and `out` receives the estimate, with no
    /// allocation once the buffers have grown to size.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal is shorter than
    /// the longest structuring element.
    pub fn baseline_into(
        &self,
        signal: &[f64],
        scratch: &mut FrontendScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let required = self.beat_element.max(self.qrs_element);
        if signal.len() < required {
            return Err(DspError::SignalTooShort {
                required,
                provided: signal.len(),
            });
        }
        let FrontendScratch {
            wedge,
            stage_a,
            stage_b,
            stage_c,
            ..
        } = scratch;
        // Stage 1: remove beats (opening then closing with the short
        // element); the four passes ping-pong between two buffers.
        sliding_extreme_into(signal, self.qrs_element, ExtremumKind::Min, wedge, stage_a);
        sliding_extreme_into(stage_a, self.qrs_element, ExtremumKind::Max, wedge, stage_b);
        sliding_extreme_into(stage_b, self.qrs_element, ExtremumKind::Max, wedge, stage_a);
        sliding_extreme_into(stage_a, self.qrs_element, ExtremumKind::Min, wedge, stage_b);
        // Stage 2 on the stage-1 output (now in `stage_b`): opening into
        // `stage_c`, then closing back into `stage_b` (its last read), and
        // the average of the two to avoid the bias either one introduces
        // alone — same expressions, same order as the allocating original.
        sliding_extreme_into(
            stage_b,
            self.beat_element,
            ExtremumKind::Min,
            wedge,
            stage_a,
        );
        sliding_extreme_into(
            stage_a,
            self.beat_element,
            ExtremumKind::Max,
            wedge,
            stage_c,
        );
        sliding_extreme_into(
            stage_b,
            self.beat_element,
            ExtremumKind::Max,
            wedge,
            stage_a,
        );
        sliding_extreme_into(
            stage_a,
            self.beat_element,
            ExtremumKind::Min,
            wedge,
            stage_b,
        );
        out.clear();
        out.reserve(signal.len());
        out.extend(
            stage_c
                .iter()
                .zip(stage_b.iter())
                .map(|(a, b)| 0.5 * (a + b)),
        );
        Ok(())
    }

    /// Removes the baseline from `signal`, returning the corrected signal.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal is shorter than
    /// the longest structuring element.
    pub fn apply(&self, signal: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.apply_into(signal, &mut FrontendScratch::default(), &mut out)?;
        Ok(out)
    }

    /// [`Self::apply`] against caller-owned scratch (see
    /// [`Self::baseline_into`]): bit-identical output, zero steady-state
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal is shorter than
    /// the longest structuring element.
    pub fn apply_into(
        &self,
        signal: &[f64],
        scratch: &mut FrontendScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.baseline_into(signal, scratch, out)?;
        for (corrected, &s) in out.iter_mut().zip(signal) {
            *corrected = s - *corrected;
        }
        Ok(())
    }

    /// The naive (pre-deque) filter: every pass rescans its window. Kept as
    /// the equivalence oracle — [`Self::apply`] must match it exactly — and
    /// the naive side of the `frontend_throughput` bench.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal is shorter than
    /// the longest structuring element.
    pub fn apply_naive(&self, signal: &[f64]) -> Result<Vec<f64>> {
        let required = self.beat_element.max(self.qrs_element);
        if signal.len() < required {
            return Err(DspError::SignalTooShort {
                required,
                provided: signal.len(),
            });
        }
        let naive = |signal: &[f64], size: usize, kind| sliding_extreme_naive(signal, size, kind);
        let open = |signal: &[f64], size: usize| {
            naive(
                &naive(signal, size, ExtremumKind::Min),
                size,
                ExtremumKind::Max,
            )
        };
        let close = |signal: &[f64], size: usize| {
            naive(
                &naive(signal, size, ExtremumKind::Max),
                size,
                ExtremumKind::Min,
            )
        };
        let stage1 = close(&open(signal, self.qrs_element), self.qrs_element);
        let opened = open(&stage1, self.beat_element);
        let closed = close(&stage1, self.beat_element);
        Ok(signal
            .iter()
            .zip(opened.iter().zip(&closed))
            .map(|(s, (a, b))| s - 0.5 * (a + b))
            .collect())
    }

    /// Comparison operations per input sample of the **shipped deque
    /// kernel** — [`MORPHOLOGY_PASSES`] passes at
    /// ~[`DEQUE_COMPARISONS_PER_SAMPLE`] amortised comparisons each,
    /// independent of the structuring-element lengths. Used by the platform
    /// cycle model of `hbc-embedded`.
    pub fn comparisons_per_sample(&self) -> usize {
        MORPHOLOGY_PASSES * DEQUE_COMPARISONS_PER_SAMPLE
    }

    /// Comparison operations per input sample of the **naive window scan**
    /// (one comparison per effective-window element per pass), the cost the
    /// embedded model charged before the deque kernel shipped. Kept so
    /// reports can call out the model delta.
    pub fn naive_comparisons_per_sample(&self) -> usize {
        4 * effective_window(self.qrs_element) + 4 * effective_window(self.beat_element)
    }
}

impl Default for MorphologicalFilter {
    fn default() -> Self {
        MorphologicalFilter::for_sampling_rate(360.0)
    }
}

/// Simple moving-average smoother, used by the delineator to stabilise the
/// MMD signal.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn moving_average(signal: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be non-empty");
    let n = signal.len();
    let half = window / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sum: f64 = signal[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_ecg_with_drift(n: usize, fs: f64) -> (Vec<f64>, Vec<f64>) {
        // Impulsive "QRS" every second plus a slow sinusoidal drift.
        let mut clean = vec![0.0; n];
        let mut drift = vec![0.0; n];
        for i in 0..n {
            let t = i as f64 / fs;
            drift[i] = 0.4 * (2.0 * std::f64::consts::PI * 0.2 * t).sin();
            if (i % fs as usize) < 20 {
                clean[i] = 1.0 * (-((i % fs as usize) as f64 - 10.0).powi(2) / 8.0).exp();
            }
        }
        let noisy: Vec<f64> = clean.iter().zip(&drift).map(|(c, d)| c + d).collect();
        (clean, noisy)
    }

    #[test]
    fn erosion_and_dilation_are_extremes() {
        let x = vec![0.0, 1.0, 5.0, 1.0, 0.0, -3.0, 0.0];
        let e = erode(&x, 3);
        let d = dilate(&x, 3);
        for i in 0..x.len() {
            assert!(e[i] <= x[i] && x[i] <= d[i]);
        }
        assert_eq!(e[5], -3.0);
        assert_eq!(d[2], 5.0);
    }

    #[test]
    fn deque_kernel_matches_naive_reference() {
        let (_, signal) = synthetic_ecg_with_drift(700, 360.0);
        for size in [1, 2, 3, 4, 7, 8, 31, 50, 132, 133, 699, 700, 1400] {
            for kind in [ExtremumKind::Min, ExtremumKind::Max] {
                let naive = sliding_extreme_naive(&signal, size, kind);
                let deque = match kind {
                    ExtremumKind::Min => erode(&signal, size),
                    ExtremumKind::Max => dilate(&signal, size),
                };
                assert_eq!(deque, naive, "size {size}, {kind:?}");
            }
        }
    }

    #[test]
    fn even_sizes_share_the_next_odd_effective_window() {
        // The single normalisation point: size 2k and 2k+1 behave identically.
        assert_eq!(effective_window(4), 5);
        assert_eq!(effective_window(5), 5);
        assert_eq!(effective_window(1), 1);
        let (_, signal) = synthetic_ecg_with_drift(200, 360.0);
        for even in [2usize, 4, 8, 72] {
            assert_eq!(erode(&signal, even), erode(&signal, even + 1));
            assert_eq!(dilate(&signal, even), dilate(&signal, even + 1));
        }
    }

    #[test]
    fn opening_removes_narrow_peaks_closing_removes_narrow_valleys() {
        let mut x = vec![0.0; 50];
        x[25] = 10.0; // one-sample spike
        let o = open(&x, 5);
        assert!(
            o.iter().all(|&v| v.abs() < 1e-12),
            "opening removes the spike"
        );
        let mut y = vec![0.0; 50];
        y[25] = -10.0;
        let c = close(&y, 5);
        assert!(
            c.iter().all(|&v| v.abs() < 1e-12),
            "closing removes the dip"
        );
    }

    #[test]
    fn idempotence_of_opening_and_closing() {
        let x: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.3).sin() * 2.0).collect();
        let once = open(&x, 7);
        let twice = open(&once, 7);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-12, "opening is idempotent");
        }
        let once = close(&x, 7);
        let twice = close(&once, 7);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-12, "closing is idempotent");
        }
    }

    #[test]
    fn baseline_removal_recovers_flat_baseline() {
        let fs = 360.0;
        let (clean, noisy) = synthetic_ecg_with_drift(3600, fs);
        let filter = MorphologicalFilter::for_sampling_rate(fs);
        let corrected = filter.apply(&noisy).expect("long enough");
        // After correction the residual drift (measured away from beats)
        // should be far smaller than the original 0.4 mV drift.
        let mut residual: f64 = 0.0;
        let mut count = 0;
        for i in 400..3200 {
            if clean[i].abs() < 1e-6 {
                residual += corrected[i].abs();
                count += 1;
            }
        }
        let mean_residual = residual / count as f64;
        assert!(
            mean_residual < 0.08,
            "baseline residual {mean_residual} should be well below the 0.4 drift"
        );
        // The QRS peaks must survive filtering.
        let max_after = corrected.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max_after > 0.7,
            "QRS amplitude should be preserved, got {max_after}"
        );
    }

    #[test]
    fn apply_matches_the_naive_reference_and_scratch_reuse_is_transparent() {
        let fs = 360.0;
        let (_, noisy) = synthetic_ecg_with_drift(2000, fs);
        let filter = MorphologicalFilter::for_sampling_rate(fs);
        let naive = filter.apply_naive(&noisy).expect("long enough");
        let deque = filter.apply(&noisy).expect("long enough");
        assert_eq!(deque, naive, "deque chain must equal the naive chain");
        // One scratch reused across calls (different signals) stays exact.
        let mut scratch = FrontendScratch::default();
        let mut out = Vec::new();
        for n in [2000, 1500, 1999] {
            filter
                .apply_into(&noisy[..n], &mut scratch, &mut out)
                .expect("long enough");
            assert_eq!(out, filter.apply_naive(&noisy[..n]).expect("long enough"));
        }
    }

    #[test]
    fn too_short_signal_is_an_error() {
        let filter = MorphologicalFilter::for_sampling_rate(360.0);
        let r = filter.apply(&[0.0; 10]);
        assert!(matches!(r, Err(DspError::SignalTooShort { .. })));
        assert!(matches!(
            filter.apply_naive(&[0.0; 10]),
            Err(DspError::SignalTooShort { .. })
        ));
        assert!(matches!(
            filter.baseline(&[0.0; 10]),
            Err(DspError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn default_filter_matches_360_hz() {
        let f = MorphologicalFilter::default();
        assert_eq!(f.qrs_element, 72);
        assert_eq!(f.beat_element, 191);
        // The deque cost is window-independent; the naive reference scales
        // with the effective windows.
        assert_eq!(
            f.comparisons_per_sample(),
            MORPHOLOGY_PASSES * DEQUE_COMPARISONS_PER_SAMPLE
        );
        assert_eq!(f.naive_comparisons_per_sample(), 4 * 73 + 4 * 191);
        assert!(f.naive_comparisons_per_sample() > 10 * f.comparisons_per_sample());
    }

    #[test]
    fn moving_average_smooths_and_preserves_mean() {
        let x: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y = moving_average(&x, 4);
        let energy_before: f64 = x.iter().map(|v| v * v).sum();
        let energy_after: f64 = y.iter().map(|v| v * v).sum();
        assert!(energy_after < energy_before / 4.0);
        let flat = vec![2.5; 30];
        let smoothed = moving_average(&flat, 7);
        assert!(smoothed.iter().all(|&v| (v - 2.5).abs() < 1e-12));
    }

    #[test]
    fn empty_signal_yields_empty_output() {
        assert!(erode(&[], 3).is_empty());
        assert!(dilate(&[], 3).is_empty());
        assert!(sliding_extreme_naive(&[], 3, ExtremumKind::Min).is_empty());
    }

    #[test]
    #[should_panic(expected = "structuring element must be non-empty")]
    fn zero_size_panics() {
        erode(&[0.0; 4], 0);
    }
}
