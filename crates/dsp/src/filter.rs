//! Morphological filtering of ECG signals.
//!
//! Ambulatory ECG is corrupted by baseline wander (respiration) and motion
//! artefacts. The embedded filtering stage of the paper (taken from Rincón et
//! al.) uses *mathematical morphology*: erosion and dilation with flat
//! structuring elements, combined into opening and closing, estimate the
//! baseline which is then subtracted from the signal. Morphological operators
//! need only comparisons — no multiplications — which is why they suit a
//! 6 MHz integer-only microcontroller.
//!
//! The baseline estimator follows the standard two-stage scheme:
//!
//! 1. opening followed by closing with a structuring element slightly longer
//!    than the QRS complex removes the beats and keeps the drift,
//! 2. a second pass with a longer element smooths the estimate,
//! 3. the estimate is subtracted from the input.

use crate::{DspError, Result};

/// Flat-structuring-element erosion: each output sample is the minimum of the
/// input over a window of `size` samples centred on it (edges are clamped).
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn erode(signal: &[f64], size: usize) -> Vec<f64> {
    assert!(size > 0, "structuring element must be non-empty");
    sliding_extreme(signal, size, f64::min, f64::INFINITY)
}

/// Flat-structuring-element dilation: each output sample is the maximum of
/// the input over a window of `size` samples centred on it.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn dilate(signal: &[f64], size: usize) -> Vec<f64> {
    assert!(size > 0, "structuring element must be non-empty");
    sliding_extreme(signal, size, f64::max, f64::NEG_INFINITY)
}

fn sliding_extreme(
    signal: &[f64],
    size: usize,
    pick: fn(f64, f64) -> f64,
    identity: f64,
) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let half = size / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let mut ext = identity;
        for &s in &signal[lo..hi] {
            ext = pick(ext, s);
        }
        out.push(ext);
    }
    out
}

/// Morphological opening: erosion followed by dilation. Removes upward peaks
/// narrower than the structuring element.
pub fn open(signal: &[f64], size: usize) -> Vec<f64> {
    dilate(&erode(signal, size), size)
}

/// Morphological closing: dilation followed by erosion. Removes downward
/// spikes narrower than the structuring element.
pub fn close(signal: &[f64], size: usize) -> Vec<f64> {
    erode(&dilate(signal, size), size)
}

/// Baseline-wander removal filter built from morphological opening/closing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorphologicalFilter {
    /// First structuring element length in samples (slightly longer than the
    /// QRS complex; the reference uses ≈0.2 s).
    pub qrs_element: usize,
    /// Second structuring element length in samples (longer than a full beat;
    /// the reference uses ≈0.53 s).
    pub beat_element: usize,
}

impl MorphologicalFilter {
    /// Filter tuned for a given sampling frequency, using the reference
    /// structuring-element durations (0.2 s and 0.53 s).
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive.
    pub fn for_sampling_rate(fs: f64) -> Self {
        assert!(fs > 0.0, "sampling frequency must be positive");
        MorphologicalFilter {
            qrs_element: ((0.2 * fs).round() as usize).max(1),
            beat_element: ((0.53 * fs).round() as usize).max(1),
        }
    }

    /// Estimates the baseline of `signal`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal is shorter than
    /// the longest structuring element.
    pub fn baseline(&self, signal: &[f64]) -> Result<Vec<f64>> {
        let required = self.beat_element.max(self.qrs_element);
        if signal.len() < required {
            return Err(DspError::SignalTooShort {
                required,
                provided: signal.len(),
            });
        }
        // Stage 1: remove beats (opening then closing with the short element).
        let stage1 = close(&open(signal, self.qrs_element), self.qrs_element);
        // Stage 2: smooth with the long element (average of opening and
        // closing to avoid the bias either one introduces alone).
        let opened = open(&stage1, self.beat_element);
        let closed = close(&stage1, self.beat_element);
        Ok(opened
            .iter()
            .zip(&closed)
            .map(|(a, b)| 0.5 * (a + b))
            .collect())
    }

    /// Removes the baseline from `signal`, returning the corrected signal.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when the signal is shorter than
    /// the longest structuring element.
    pub fn apply(&self, signal: &[f64]) -> Result<Vec<f64>> {
        let baseline = self.baseline(signal)?;
        Ok(signal.iter().zip(&baseline).map(|(s, b)| s - b).collect())
    }

    /// Number of comparison operations the filter performs per input sample,
    /// used by the platform cycle model of `hbc-embedded`.
    ///
    /// Each erosion/dilation costs one comparison per element of the
    /// structuring window; the filter runs 4 passes with the short element
    /// and 4 with the long one (2 openings + 2 closings).
    pub fn comparisons_per_sample(&self) -> usize {
        4 * self.qrs_element + 4 * self.beat_element
    }
}

impl Default for MorphologicalFilter {
    fn default() -> Self {
        MorphologicalFilter::for_sampling_rate(360.0)
    }
}

/// Simple moving-average smoother, used by the delineator to stabilise the
/// MMD signal.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn moving_average(signal: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be non-empty");
    let n = signal.len();
    let half = window / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sum: f64 = signal[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_ecg_with_drift(n: usize, fs: f64) -> (Vec<f64>, Vec<f64>) {
        // Impulsive "QRS" every second plus a slow sinusoidal drift.
        let mut clean = vec![0.0; n];
        let mut drift = vec![0.0; n];
        for i in 0..n {
            let t = i as f64 / fs;
            drift[i] = 0.4 * (2.0 * std::f64::consts::PI * 0.2 * t).sin();
            if (i % fs as usize) < 20 {
                clean[i] = 1.0 * (-((i % fs as usize) as f64 - 10.0).powi(2) / 8.0).exp();
            }
        }
        let noisy: Vec<f64> = clean.iter().zip(&drift).map(|(c, d)| c + d).collect();
        (clean, noisy)
    }

    #[test]
    fn erosion_and_dilation_are_extremes() {
        let x = vec![0.0, 1.0, 5.0, 1.0, 0.0, -3.0, 0.0];
        let e = erode(&x, 3);
        let d = dilate(&x, 3);
        for i in 0..x.len() {
            assert!(e[i] <= x[i] && x[i] <= d[i]);
        }
        assert_eq!(e[5], -3.0);
        assert_eq!(d[2], 5.0);
    }

    #[test]
    fn opening_removes_narrow_peaks_closing_removes_narrow_valleys() {
        let mut x = vec![0.0; 50];
        x[25] = 10.0; // one-sample spike
        let o = open(&x, 5);
        assert!(
            o.iter().all(|&v| v.abs() < 1e-12),
            "opening removes the spike"
        );
        let mut y = vec![0.0; 50];
        y[25] = -10.0;
        let c = close(&y, 5);
        assert!(
            c.iter().all(|&v| v.abs() < 1e-12),
            "closing removes the dip"
        );
    }

    #[test]
    fn idempotence_of_opening_and_closing() {
        let x: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.3).sin() * 2.0).collect();
        let once = open(&x, 7);
        let twice = open(&once, 7);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-12, "opening is idempotent");
        }
        let once = close(&x, 7);
        let twice = close(&once, 7);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-12, "closing is idempotent");
        }
    }

    #[test]
    fn baseline_removal_recovers_flat_baseline() {
        let fs = 360.0;
        let (clean, noisy) = synthetic_ecg_with_drift(3600, fs);
        let filter = MorphologicalFilter::for_sampling_rate(fs);
        let corrected = filter.apply(&noisy).expect("long enough");
        // After correction the residual drift (measured away from beats)
        // should be far smaller than the original 0.4 mV drift.
        let mut residual: f64 = 0.0;
        let mut count = 0;
        for i in 400..3200 {
            if clean[i].abs() < 1e-6 {
                residual += corrected[i].abs();
                count += 1;
            }
        }
        let mean_residual = residual / count as f64;
        assert!(
            mean_residual < 0.08,
            "baseline residual {mean_residual} should be well below the 0.4 drift"
        );
        // The QRS peaks must survive filtering.
        let max_after = corrected.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max_after > 0.7,
            "QRS amplitude should be preserved, got {max_after}"
        );
    }

    #[test]
    fn too_short_signal_is_an_error() {
        let filter = MorphologicalFilter::for_sampling_rate(360.0);
        let r = filter.apply(&[0.0; 10]);
        assert!(matches!(r, Err(DspError::SignalTooShort { .. })));
    }

    #[test]
    fn default_filter_matches_360_hz() {
        let f = MorphologicalFilter::default();
        assert_eq!(f.qrs_element, 72);
        assert_eq!(f.beat_element, 191);
        assert!(f.comparisons_per_sample() > 0);
    }

    #[test]
    fn moving_average_smooths_and_preserves_mean() {
        let x: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y = moving_average(&x, 4);
        let energy_before: f64 = x.iter().map(|v| v * v).sum();
        let energy_after: f64 = y.iter().map(|v| v * v).sum();
        assert!(energy_after < energy_before / 4.0);
        let flat = vec![2.5; 30];
        let smoothed = moving_average(&flat, 7);
        assert!(smoothed.iter().all(|&v| (v - 2.5).abs() < 1e-12));
    }

    #[test]
    fn empty_signal_yields_empty_output() {
        assert!(erode(&[], 3).is_empty());
        assert!(dilate(&[], 3).is_empty());
    }
}
