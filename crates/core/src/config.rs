//! Experiment configuration.
//!
//! Every experiment in this repository runs from an [`ExperimentConfig`],
//! which bundles the dataset specification, the training budgets and the
//! operating-point targets of the paper. Two presets exist:
//!
//! * [`ExperimentConfig::paper`] — the full Table I dataset (101 462 beats),
//!   the paper's GA budget (population 20, 30 generations) and its 97 % ARR
//!   target. Reproducing every table at this scale takes hours of CPU time.
//! * [`ExperimentConfig::quick`] — a class-balance-preserving scaled-down
//!   dataset and a small GA, suitable for CI, examples and benches.

use hbc_ecg::dataset::DatasetSpec;
use hbc_nfc::{TrainingConfig, TwoStepConfig};
use hbc_rp::GeneticConfig;

use crate::{CoreError, Result};

/// How much of the paper-scale workload an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// Full Table I dataset and the paper's GA budget.
    Paper,
    /// Scaled-down dataset (fraction of the large splits) and a reduced GA.
    Quick,
    /// Explicit scaling factor applied to training set 2 and the test set.
    Fraction(f64),
}

/// Configuration shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Dataset composition.
    pub dataset: DatasetSpec,
    /// Seed driving dataset generation and every stochastic component.
    pub seed: u64,
    /// Coefficient count used by single-k experiments (Figure 5, Table III,
    /// energy): the paper uses 8.
    pub coefficients: usize,
    /// Coefficient counts swept by Table II.
    pub coefficient_sweep: [usize; 3],
    /// Genetic-algorithm budget (`None` disables the GA and uses a single
    /// random projection, which is the quick default).
    pub genetic: Option<GeneticConfig>,
    /// Membership-function training budget.
    pub training: TrainingConfig,
    /// Minimum Abnormal Recognition Rate targeted when calibrating α
    /// (paper: 0.97).
    pub target_arr: f64,
    /// Downsampling factor of the WBSN variant (paper: 4, i.e. 360 → 90 Hz).
    pub downsample: usize,
    /// Number of α_test points swept when drawing the Figure 5 fronts.
    pub pareto_points: usize,
}

impl ExperimentConfig {
    /// Full paper-scale configuration.
    pub fn paper() -> Self {
        ExperimentConfig {
            dataset: DatasetSpec::paper(),
            seed: 2013,
            coefficients: 8,
            coefficient_sweep: [8, 16, 32],
            genetic: Some(GeneticConfig::paper()),
            training: TrainingConfig::default(),
            target_arr: 0.97,
            downsample: 4,
            pareto_points: 40,
        }
    }

    /// Reduced configuration for CI, examples and benches (no GA, scaled
    /// dataset).
    pub fn quick() -> Self {
        ExperimentConfig {
            dataset: DatasetSpec::tiny(),
            seed: 2013,
            coefficients: 8,
            coefficient_sweep: [8, 16, 32],
            genetic: None,
            training: TrainingConfig::quick(),
            target_arr: 0.97,
            downsample: 4,
            pareto_points: 15,
        }
    }

    /// Configuration at an arbitrary scale.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when `scale` is a non-positive fraction.
    pub fn at_scale(scale: Scale) -> Result<Self> {
        match scale {
            Scale::Paper => Ok(Self::paper()),
            Scale::Quick => Ok(Self::quick()),
            Scale::Fraction(f) => {
                if !(f > 0.0 && f <= 1.0) {
                    return Err(CoreError::Config(format!(
                        "scale fraction must be in (0, 1], got {f}"
                    )));
                }
                Ok(ExperimentConfig {
                    dataset: DatasetSpec::paper_scaled(f),
                    genetic: None,
                    training: TrainingConfig::quick(),
                    ..Self::paper()
                })
            }
        }
    }

    /// Overrides the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the single-k coefficient count (builder style).
    pub fn with_coefficients(mut self, coefficients: usize) -> Self {
        self.coefficients = coefficients;
        self
    }

    /// Two-step training configuration for a given coefficient count.
    pub fn two_step(&self, coefficients: usize) -> TwoStepConfig {
        TwoStepConfig {
            coefficients,
            genetic: self.genetic.unwrap_or_else(GeneticConfig::quick),
            training: self.training,
            target_arr: self.target_arr,
            alpha_tolerance: 1e-3,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when a field is out of range.
    pub fn validate(&self) -> Result<()> {
        if self.coefficients == 0 {
            return Err(CoreError::Config(
                "coefficient count must be non-zero".into(),
            ));
        }
        if self.downsample == 0 {
            return Err(CoreError::Config(
                "downsampling factor must be non-zero".into(),
            ));
        }
        if !(self.target_arr > 0.0 && self.target_arr <= 1.0) {
            return Err(CoreError::Config(format!(
                "target ARR must be in (0, 1], got {}",
                self.target_arr
            )));
        }
        if self.pareto_points < 2 {
            return Err(CoreError::Config(
                "at least two pareto points are required".into(),
            ));
        }
        Ok(())
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(ExperimentConfig::paper().validate().is_ok());
        assert!(ExperimentConfig::quick().validate().is_ok());
        assert!(ExperimentConfig::default().validate().is_ok());
    }

    #[test]
    fn paper_preset_matches_the_manuscript() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.coefficient_sweep, [8, 16, 32]);
        assert_eq!(c.coefficients, 8);
        assert_eq!(c.downsample, 4);
        assert!((c.target_arr - 0.97).abs() < 1e-12);
        assert_eq!(c.dataset.test.total(), 89_012);
        let ga = c.genetic.expect("paper preset uses the GA");
        assert_eq!(ga.population, 20);
        assert_eq!(ga.generations, 30);
    }

    #[test]
    fn scale_fraction_is_validated() {
        assert!(ExperimentConfig::at_scale(Scale::Fraction(0.0)).is_err());
        assert!(ExperimentConfig::at_scale(Scale::Fraction(1.5)).is_err());
        let c = ExperimentConfig::at_scale(Scale::Fraction(0.01)).expect("valid");
        assert!(c.dataset.test.total() < 1000);
        assert!(c.genetic.is_none());
        assert!(ExperimentConfig::at_scale(Scale::Paper)
            .expect("valid")
            .genetic
            .is_some());
        assert_eq!(
            ExperimentConfig::at_scale(Scale::Quick).expect("valid"),
            ExperimentConfig::quick()
        );
    }

    #[test]
    fn builder_overrides() {
        let c = ExperimentConfig::quick().with_seed(7).with_coefficients(16);
        assert_eq!(c.seed, 7);
        assert_eq!(c.coefficients, 16);
        let ts = c.two_step(16);
        assert_eq!(ts.coefficients, 16);
        assert!((ts.target_arr - 0.97).abs() < 1e-12);
    }

    #[test]
    fn invalid_fields_are_rejected() {
        let mut c = ExperimentConfig::quick();
        c.coefficients = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::quick();
        c.downsample = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::quick();
        c.target_arr = 1.2;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::quick();
        c.pareto_points = 1;
        assert!(c.validate().is_err());
    }
}
