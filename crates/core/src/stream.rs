//! Multi-patient streaming service: many concurrent [`StreamingFirmware`]
//! sessions multiplexed over the `hbc-par` runner.
//!
//! A production node fleet terminates one sample stream per patient. The
//! [`StreamHub`] models that service point on the host: each patient gets an
//! independent push-based firmware session (bounded memory, bit-identical to
//! the batch pipeline), arriving chunks are dispatched over all cores with
//! the same deterministic work-stealing runner the evaluation engine uses,
//! and per-session figures of merit are merged **in session order** through
//! [`EvaluationReport::merge`] — so the fleet-wide report is bit-identical
//! for any thread count, like every other parallel path in this workspace.
//!
//! Ground truth is unknown while streaming; outcomes are labelled after the
//! fact by matching emitted peak positions against reference annotations
//! with the same tolerance the batch firmware reports with.

use std::num::NonZeroUsize;
use std::sync::Mutex;

use hbc_dsp::window::match_peaks;
use hbc_dsp::{FrontendScratch, MorphologicalFilter, PeakDetector, PeakThresholds};
use hbc_ecg::record::Annotation;
use hbc_embedded::firmware::BeatOutcome;
use hbc_embedded::{StreamingFirmware, WbsnFirmware};
use hbc_nfc::EvaluationReport;
use hbc_par::Par;

use crate::{CoreError, Result};

/// Handle of one patient session inside a [`StreamHub`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

impl SessionId {
    /// Position of the session in the hub (also its merge order).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One patient's live session: the streaming firmware plus the outcomes it
/// has emitted so far.
#[derive(Debug)]
struct PatientStream<'fw> {
    patient_id: u32,
    stream: StreamingFirmware<'fw>,
    outcomes: Vec<BeatOutcome>,
}

impl PatientStream<'_> {
    fn drain(&mut self) {
        while let Some(o) = self.stream.pop_outcome() {
            self.outcomes.push(o);
        }
    }
}

/// Multiplexes many concurrent per-patient [`StreamingFirmware`] sessions
/// over the deterministic parallel runner.
///
/// Sessions are independent, so a batch of chunks — at most one per session
/// — is ingested with one parallel sweep; results (emitted beats, reports)
/// depend only on each session's own sample stream, never on scheduling.
#[derive(Debug)]
pub struct StreamHub<'fw> {
    firmware: &'fw WbsnFirmware,
    fs: f64,
    par: Par,
    sessions: Vec<Mutex<PatientStream<'fw>>>,
    /// Session-setup working sets: conditioning-chain scratch + filtered
    /// buffer pairs, pooled so concurrent `calibrate_thresholds` calls
    /// (calibration takes `&self`) each pop one, compute unlocked, and push
    /// it back — the lock is held for the pop/push only, never across the
    /// O(n) filter+wavelet work. The pool is bounded by the peak number of
    /// concurrent calibrations. Sits alongside the per-session `BeatScratch`
    /// the streaming firmware already owns.
    calibration: Mutex<Vec<CalibrationScratch>>,
}

/// Buffers for one threshold calibration: the front-end scratch plus the
/// baseline-filtered stretch the detector calibrates on.
#[derive(Debug, Default)]
struct CalibrationScratch {
    frontend: FrontendScratch,
    filtered: Vec<f64>,
}

impl<'fw> StreamHub<'fw> {
    /// Creates a hub serving sessions of `firmware` at sampling rate `fs`,
    /// using one worker per core.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive (propagated from the DSP stages when
    /// the first session is added).
    pub fn new(firmware: &'fw WbsnFirmware, fs: f64) -> Self {
        Self::with_threads(firmware, fs, None)
    }

    /// Creates a hub with an explicit worker-thread policy (`None` = one per
    /// core).
    pub fn with_threads(
        firmware: &'fw WbsnFirmware,
        fs: f64,
        threads: Option<NonZeroUsize>,
    ) -> Self {
        StreamHub {
            firmware,
            fs,
            par: Par::with_threads(threads),
            sessions: Vec::new(),
            calibration: Mutex::new(Vec::new()),
        }
    }

    /// Number of registered sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Derives per-patient detection thresholds from a raw calibration
    /// stretch (typically the first seconds of the patient's signal): the
    /// stretch is baseline-filtered and the detector's RMS calibration runs
    /// over it — the same procedure the batch path applies to whole records.
    ///
    /// # Errors
    ///
    /// Returns an error when the stretch is too short for the filter or the
    /// wavelet decomposition.
    pub fn calibrate_thresholds(&self, raw: &[f64]) -> Result<PeakThresholds> {
        let mut scratch = self
            .calibration
            .lock()
            .expect("calibration pool poisoned")
            .pop()
            .unwrap_or_default();
        let CalibrationScratch { frontend, filtered } = &mut scratch;
        let thresholds = MorphologicalFilter::for_sampling_rate(self.fs)
            .apply_into(raw, frontend, filtered)
            .map_err(CoreError::from)
            .and_then(|()| {
                Ok(PeakDetector::new(self.fs).calibrate_with_scratch(filtered, frontend)?)
            });
        self.calibration
            .lock()
            .expect("calibration pool poisoned")
            .push(scratch);
        thresholds
    }

    /// Registers a new patient session with fixed detection thresholds,
    /// returning its handle. Session order is merge order.
    pub fn add_patient(&mut self, patient_id: u32, thresholds: PeakThresholds) -> SessionId {
        let id = SessionId(self.sessions.len());
        self.sessions.push(Mutex::new(PatientStream {
            patient_id,
            stream: StreamingFirmware::new(self.firmware, self.fs, thresholds),
            outcomes: Vec::new(),
        }));
        id
    }

    fn session(&self, id: SessionId) -> Result<&Mutex<PatientStream<'fw>>> {
        self.sessions
            .get(id.0)
            .ok_or_else(|| CoreError::Config(format!("unknown session #{}", id.0)))
    }

    /// Ingests one batch of chunks — at most one chunk per session — pushing
    /// every chunk through its session in parallel.
    ///
    /// Within a batch the sessions are independent, so the sweep is
    /// deterministic; feeding the same session twice in one batch would make
    /// its sample order scheduling-dependent and is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown session or a duplicated
    /// session within the batch.
    pub fn ingest(&self, feeds: &[(SessionId, &[f64])]) -> Result<()> {
        let mut seen = vec![false; self.sessions.len()];
        for (id, _) in feeds {
            let slot = seen
                .get_mut(id.0)
                .ok_or_else(|| CoreError::Config(format!("unknown session #{}", id.0)))?;
            if std::mem::replace(slot, true) {
                return Err(CoreError::Config(format!(
                    "session #{} fed twice in one batch",
                    id.0
                )));
            }
        }
        self.par.map(feeds, |&(id, chunk)| {
            let mut session = self.sessions[id.0].lock().expect("session poisoned");
            session.stream.push_chunk(chunk);
            session.drain();
        });
        Ok(())
    }

    /// Finishes every session in parallel: borders are drained and all
    /// remaining beats emitted. Idempotent.
    pub fn finish(&self) {
        let ids: Vec<usize> = (0..self.sessions.len()).collect();
        self.par.map(&ids, |&i| {
            let mut session = self.sessions[i].lock().expect("session poisoned");
            session.stream.finish();
            session.drain();
        });
    }

    /// The patient identifier of a session.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown session.
    pub fn patient_id(&self, id: SessionId) -> Result<u32> {
        Ok(self
            .session(id)?
            .lock()
            .expect("session poisoned")
            .patient_id)
    }

    /// Copy of the outcomes a session has emitted so far.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown session.
    pub fn outcomes(&self, id: SessionId) -> Result<Vec<BeatOutcome>> {
        Ok(self
            .session(id)?
            .lock()
            .expect("session poisoned")
            .outcomes
            .clone())
    }

    /// Total beats emitted across all sessions so far.
    pub fn total_beats(&self) -> usize {
        self.sessions
            .iter()
            .map(|s| s.lock().expect("session poisoned").outcomes.len())
            .sum()
    }

    /// Labels one session's emitted beats against reference annotations
    /// (two-pointer position matching within `tolerance` samples; unmatched
    /// beats are ignored, as in the batch firmware report) and returns its
    /// figures of merit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown session.
    pub fn session_report(
        &self,
        id: SessionId,
        annotations: &[Annotation],
        tolerance: usize,
    ) -> Result<EvaluationReport> {
        let session = self.session(id)?.lock().expect("session poisoned");
        Ok(report_for(&session.outcomes, annotations, tolerance))
    }

    /// Fleet-wide report: every listed session is labelled in parallel and
    /// the per-session reports are merged **in the order given** via
    /// [`EvaluationReport::merge`] — bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown session.
    pub fn merged_report(
        &self,
        truths: &[(SessionId, &[Annotation])],
        tolerance: usize,
    ) -> Result<EvaluationReport> {
        for (id, _) in truths {
            self.session(*id)?;
        }
        let reports = self.par.map(truths, |&(id, annotations)| {
            let session = self.sessions[id.0].lock().expect("session poisoned");
            report_for(&session.outcomes, annotations, tolerance)
        });
        let mut merged = EvaluationReport::new();
        for report in &reports {
            merged.merge(report);
        }
        Ok(merged)
    }
}

/// Labels outcomes by matching their peak positions against annotations and
/// accumulates the confusion counts.
fn report_for(
    outcomes: &[BeatOutcome],
    annotations: &[Annotation],
    tolerance: usize,
) -> EvaluationReport {
    let peaks: Vec<usize> = outcomes.iter().map(|o| o.peak).collect();
    let matching = match_peaks(&peaks, annotations, tolerance);
    let mut report = EvaluationReport::new();
    for (outcome, matched) in outcomes.iter().zip(&matching.matched_annotation) {
        if let Some(ai) = matched {
            report.record(annotations[*ai].class, outcome.predicted);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::pipeline::TrainedSystem;
    use hbc_ecg::record::{EcgRecord, Lead};
    use hbc_ecg::synthetic::SyntheticEcg;
    use hbc_embedded::int_classifier::AlphaQ16;
    use hbc_rp::PackedProjection;
    use std::sync::OnceLock;

    fn system() -> &'static TrainedSystem {
        static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
        SYSTEM.get_or_init(|| TrainedSystem::train(&ExperimentConfig::quick()).expect("training"))
    }

    fn firmware() -> WbsnFirmware {
        let system = system();
        WbsnFirmware::new(
            PackedProjection::from_matrix(&system.pc_downsampled.projection),
            system.wbsn.classifier.clone(),
            AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
            system.config.downsample,
            hbc_ecg::beat::BeatWindow::PAPER,
        )
        .expect("firmware dimensions")
    }

    fn patient_record(seed: u64, beats: usize) -> EcgRecord {
        let mut gen = SyntheticEcg::with_seed(seed);
        let rhythm = gen.rhythm(beats, 0.1, 0.1);
        gen.record(seed as u32, &rhythm, 1).expect("record")
    }

    #[test]
    fn hub_matches_per_patient_batch_processing_for_any_thread_count() {
        let fw = firmware();
        let records: Vec<EcgRecord> = (0..3).map(|i| patient_record(100 + i, 40)).collect();
        let tolerance = (0.06 * records[0].fs) as usize;

        // Reference: the batch firmware on each record, labelled the same
        // way the hub labels streams.
        let mut reference = EvaluationReport::new();
        for record in &records {
            let report = fw.process_record(record).expect("batch");
            let outcomes: Vec<BeatOutcome> = report.beats.clone();
            reference.merge(&report_for(&outcomes, &record.annotations, tolerance));
        }

        for threads in [NonZeroUsize::new(1), NonZeroUsize::new(4)] {
            let mut hub = StreamHub::with_threads(&fw, records[0].fs, threads);
            let ids: Vec<SessionId> = records
                .iter()
                .map(|r| {
                    let thresholds = hub
                        .calibrate_thresholds(r.lead(Lead(0)).expect("lead"))
                        .expect("calibrate");
                    hub.add_patient(r.id, thresholds)
                })
                .collect();
            // Stream every patient concurrently, one-second chunks.
            let chunk = records[0].fs as usize;
            let longest = records.iter().map(EcgRecord::len).max().expect("records");
            let mut offset = 0;
            while offset < longest {
                let feeds: Vec<(SessionId, &[f64])> = records
                    .iter()
                    .zip(&ids)
                    .filter_map(|(r, &id)| {
                        let lead = r.lead(Lead(0)).expect("lead");
                        (offset < lead.len())
                            .then(|| (id, &lead[offset..(offset + chunk).min(lead.len())]))
                    })
                    .collect();
                hub.ingest(&feeds).expect("ingest");
                offset += chunk;
            }
            hub.finish();
            hub.finish(); // idempotent

            let truths: Vec<(SessionId, &[Annotation])> = records
                .iter()
                .zip(&ids)
                .map(|(r, &id)| (id, r.annotations.as_slice()))
                .collect();
            let merged = hub.merged_report(&truths, tolerance).expect("report");
            assert_eq!(merged, reference, "threads = {threads:?}");

            // Per-session reports merge (in session order) to the same
            // fleet-wide report.
            let mut manual = EvaluationReport::new();
            for &(id, anns) in &truths {
                manual.merge(&hub.session_report(id, anns, tolerance).expect("session"));
            }
            assert_eq!(manual, merged);
            assert_eq!(hub.num_sessions(), records.len());
            assert_eq!(hub.total_beats(), merged.total());
            assert_eq!(hub.patient_id(ids[0]).expect("known"), records[0].id);
            assert!(!hub.outcomes(ids[0]).expect("known").is_empty());
        }
    }

    #[test]
    fn hub_rejects_bad_batches() {
        let fw = firmware();
        let mut hub = StreamHub::new(&fw, 360.0);
        let thresholds = PeakThresholds {
            first_scale: 1.0,
            cross_scale: vec![1.0; 3],
        };
        let id = hub.add_patient(7, thresholds);
        let chunk = [0.0f64; 16];
        // Unknown session.
        assert!(hub.ingest(&[(SessionId(9), &chunk)]).is_err());
        // Duplicate session in one batch.
        assert!(hub.ingest(&[(id, &chunk), (id, &chunk)]).is_err());
        // Valid batch.
        hub.ingest(&[(id, &chunk)]).expect("ok");
        assert!(hub.outcomes(SessionId(3)).is_err());
        assert!(hub.session_report(SessionId(3), &[], 10).is_err());
        assert!(hub.patient_id(SessionId(3)).is_err());
    }
}
