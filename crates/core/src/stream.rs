//! Multi-patient streaming service: many concurrent [`StreamingFirmware`]
//! sessions multiplexed over the `hbc-par` runner.
//!
//! A production node fleet terminates one sample stream per patient. The
//! [`StreamHub`] models that service point on the host: each patient gets an
//! independent push-based firmware session (bounded memory, bit-identical to
//! the batch pipeline), arriving chunks are dispatched over all cores with
//! the same deterministic work-stealing runner the evaluation engine uses,
//! and per-session figures of merit are merged **in session order** through
//! [`EvaluationReport::merge`] — so the fleet-wide report is bit-identical
//! for any thread count, like every other parallel path in this workspace.
//!
//! Ground truth is unknown while streaming; outcomes are labelled after the
//! fact by matching emitted peak positions against reference annotations
//! with the same tolerance the batch firmware reports with.

use std::num::NonZeroUsize;
use std::sync::Mutex;

use hbc_dsp::window::match_peaks;
use hbc_dsp::{FrontendScratch, MorphologicalFilter, PeakDetector, PeakThresholds};
use hbc_ecg::record::Annotation;
use hbc_embedded::firmware::BeatOutcome;
use hbc_embedded::{StageMetrics, StreamingFirmware, WbsnFirmware};
use hbc_nfc::EvaluationReport;
use hbc_obs::Histogram;
use hbc_par::Par;

use crate::{CoreError, Result};

/// Handle of one patient session inside a [`StreamHub`].
///
/// Slots freed by [`StreamHub::close_session`] are reused by later
/// [`StreamHub::add_patient`] calls, so a handle is only meaningful until its
/// session is closed — a stale handle afterwards either errors (slot still
/// free) or aliases the new occupant. Serving layers that need to detect
/// stale handles (e.g. the network gateway) keep their own wire-level ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

impl SessionId {
    /// Position of the session in the hub (also its merge order).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Everything a closed session leaves behind: identity, the complete outcome
/// stream and the session counters. Produced by [`StreamHub::close_session`];
/// figures of merit become available once ground truth is supplied to
/// [`SessionReport::labelled`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Patient identifier the session was registered with.
    pub patient_id: u32,
    /// Every beat outcome the session emitted, in temporal order.
    pub outcomes: Vec<BeatOutcome>,
    /// Raw samples the session ingested.
    pub samples_pushed: usize,
    /// Beats forwarded to the delineation stage.
    pub forwarded_beats: usize,
}

impl SessionReport {
    /// Labels the session's beats against reference annotations (two-pointer
    /// position matching within `tolerance` samples, unmatched beats ignored
    /// — the same convention as [`StreamHub::session_report`]) and returns
    /// the figures of merit.
    pub fn labelled(&self, annotations: &[Annotation], tolerance: usize) -> EvaluationReport {
        report_for(&self.outcomes, annotations, tolerance)
    }
}

/// One patient's live session: the streaming firmware plus the outcomes it
/// has emitted so far.
#[derive(Debug)]
struct PatientStream<'fw> {
    patient_id: u32,
    stream: StreamingFirmware<'fw>,
    outcomes: Vec<BeatOutcome>,
}

impl PatientStream<'_> {
    fn drain(&mut self) {
        while let Some(o) = self.stream.pop_outcome() {
            self.outcomes.push(o);
        }
    }
}

/// Multiplexes many concurrent per-patient [`StreamingFirmware`] sessions
/// over the deterministic parallel runner.
///
/// Sessions are independent, so a batch of chunks — at most one per session
/// — is ingested with one parallel sweep; results (emitted beats, reports)
/// depend only on each session's own sample stream, never on scheduling.
#[derive(Debug)]
pub struct StreamHub<'fw> {
    firmware: &'fw WbsnFirmware,
    fs: f64,
    par: Par,
    /// Session slots. A closed session leaves a `None` hole whose index is
    /// queued on the free list and handed to the next [`Self::add_patient`].
    sessions: Vec<Mutex<Option<PatientStream<'fw>>>>,
    /// Indices of free slots, reused LIFO.
    free: Vec<usize>,
    /// Session-setup working sets: conditioning-chain scratch + filtered
    /// buffer pairs, pooled so concurrent `calibrate_thresholds` calls
    /// (calibration takes `&self`) each pop one, compute unlocked, and push
    /// it back — the lock is held for the pop/push only, never across the
    /// O(n) filter+wavelet work. The pool is bounded by the peak number of
    /// concurrent calibrations. Sits alongside the per-session `BeatScratch`
    /// the streaming firmware already owns.
    calibration: Mutex<Vec<CalibrationScratch>>,
    /// Wall-clock microseconds per [`Self::ingest`] batch (the full parallel
    /// sweep). Behind a mutex because `ingest` takes `&self`; uncontended in
    /// the single-reactor serving path.
    ingest_micros: Mutex<Histogram>,
    /// Stage histograms of sessions that have closed, merged at close time
    /// so their timings survive slot reuse.
    closed_stages: StageMetrics,
}

/// Buffers for one threshold calibration: the front-end scratch plus the
/// baseline-filtered stretch the detector calibrates on.
#[derive(Debug, Default)]
struct CalibrationScratch {
    frontend: FrontendScratch,
    filtered: Vec<f64>,
}

impl<'fw> StreamHub<'fw> {
    /// Creates a hub serving sessions of `firmware` at sampling rate `fs`,
    /// using one worker per core.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive (propagated from the DSP stages when
    /// the first session is added).
    pub fn new(firmware: &'fw WbsnFirmware, fs: f64) -> Self {
        Self::with_threads(firmware, fs, None)
    }

    /// Creates a hub with an explicit worker-thread policy (`None` = one per
    /// core).
    pub fn with_threads(
        firmware: &'fw WbsnFirmware,
        fs: f64,
        threads: Option<NonZeroUsize>,
    ) -> Self {
        StreamHub {
            firmware,
            fs,
            par: Par::with_threads(threads),
            sessions: Vec::new(),
            free: Vec::new(),
            calibration: Mutex::new(Vec::new()),
            ingest_micros: Mutex::new(Histogram::new()),
            closed_stages: StageMetrics::default(),
        }
    }

    /// Number of session slots (active sessions plus reusable holes left by
    /// closed ones) — the upper bound a caller may have handles for.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Number of sessions currently live (slots not yet closed).
    pub fn active_sessions(&self) -> usize {
        self.sessions.len() - self.free.len()
    }

    /// Derives per-patient detection thresholds from a raw calibration
    /// stretch (typically the first seconds of the patient's signal): the
    /// stretch is baseline-filtered and the detector's RMS calibration runs
    /// over it — the same procedure the batch path applies to whole records.
    ///
    /// # Errors
    ///
    /// Returns an error when the stretch is too short for the filter or the
    /// wavelet decomposition.
    pub fn calibrate_thresholds(&self, raw: &[f64]) -> Result<PeakThresholds> {
        let mut scratch = self
            .calibration
            .lock()
            .expect("calibration pool poisoned")
            .pop()
            .unwrap_or_default();
        let CalibrationScratch { frontend, filtered } = &mut scratch;
        let thresholds = MorphologicalFilter::for_sampling_rate(self.fs)
            .apply_into(raw, frontend, filtered)
            .map_err(CoreError::from)
            .and_then(|()| {
                Ok(PeakDetector::new(self.fs).calibrate_with_scratch(filtered, frontend)?)
            });
        self.calibration
            .lock()
            .expect("calibration pool poisoned")
            .push(scratch);
        thresholds
    }

    /// Registers a new patient session with fixed detection thresholds,
    /// returning its handle. Slots freed by [`Self::close_session`] are
    /// reused (most recently freed first); otherwise a new slot is appended.
    /// Slot order is merge order.
    pub fn add_patient(&mut self, patient_id: u32, thresholds: PeakThresholds) -> SessionId {
        let session = PatientStream {
            patient_id,
            stream: StreamingFirmware::new(self.firmware, self.fs, thresholds),
            outcomes: Vec::new(),
        };
        match self.free.pop() {
            Some(index) => {
                *self.sessions[index].lock().expect("session poisoned") = Some(session);
                SessionId(index)
            }
            None => {
                self.sessions.push(Mutex::new(Some(session)));
                SessionId(self.sessions.len() - 1)
            }
        }
    }

    /// Closes one session: its stream is finished (borders drained, all
    /// remaining beats emitted), the complete outcome history is returned as
    /// a [`SessionReport`], and the slot is freed for reuse by the next
    /// [`Self::add_patient`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown or already-closed
    /// session.
    pub fn close_session(&mut self, id: SessionId) -> Result<SessionReport> {
        let mut slot = self.session(id)?.lock().expect("session poisoned");
        let mut session = slot
            .take()
            .ok_or_else(|| CoreError::Config(format!("session #{} already closed", id.0)))?;
        drop(slot);
        session.stream.finish();
        session.drain();
        self.closed_stages.merge(session.stream.stage_metrics());
        self.free.push(id.0);
        Ok(SessionReport {
            patient_id: session.patient_id,
            samples_pushed: session.stream.samples_pushed(),
            forwarded_beats: session.stream.forwarded_beats(),
            outcomes: session.outcomes,
        })
    }

    fn session(&self, id: SessionId) -> Result<&Mutex<Option<PatientStream<'fw>>>> {
        self.sessions
            .get(id.0)
            .ok_or_else(|| CoreError::Config(format!("unknown session #{}", id.0)))
    }

    fn closed(id: SessionId) -> CoreError {
        CoreError::Config(format!("session #{} is closed", id.0))
    }

    /// Ingests one batch of chunks — at most one chunk per session — pushing
    /// every chunk through its session in parallel.
    ///
    /// Within a batch the sessions are independent, so the sweep is
    /// deterministic; feeding the same session twice in one batch would make
    /// its sample order scheduling-dependent and is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown or closed session or a
    /// duplicated session within the batch.
    pub fn ingest(&self, feeds: &[(SessionId, &[f64])]) -> Result<()> {
        let mut seen = vec![false; self.sessions.len()];
        for (id, _) in feeds {
            let slot = seen
                .get_mut(id.0)
                .ok_or_else(|| CoreError::Config(format!("unknown session #{}", id.0)))?;
            if std::mem::replace(slot, true) {
                return Err(CoreError::Config(format!(
                    "session #{} fed twice in one batch",
                    id.0
                )));
            }
            if self
                .session(*id)?
                .lock()
                .expect("session poisoned")
                .is_none()
            {
                return Err(Self::closed(*id));
            }
        }
        let started = std::time::Instant::now();
        self.par.map(feeds, |&(id, chunk)| {
            let mut slot = self.sessions[id.0].lock().expect("session poisoned");
            // Checked above; `ingest` takes `&self` and closing needs
            // `&mut self`, so the slot cannot vanish during the sweep.
            let session = slot.as_mut().expect("session closed mid-ingest");
            session.stream.push_chunk(chunk);
            session.drain();
        });
        self.ingest_micros
            .lock()
            .expect("ingest histogram poisoned")
            .record(started.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Wall-clock microseconds per [`Self::ingest`] batch so far (cloned
    /// snapshot).
    pub fn ingest_latency(&self) -> Histogram {
        self.ingest_micros
            .lock()
            .expect("ingest histogram poisoned")
            .clone()
    }

    /// Per-stage latency histograms aggregated across the hub: every closed
    /// session's timings (merged at close) plus the current state of every
    /// live session. Histogram merge is deterministic, so the aggregate is
    /// independent of session scheduling and close order.
    pub fn stage_metrics(&self) -> StageMetrics {
        let mut merged = self.closed_stages.clone();
        for slot in &self.sessions {
            let slot = slot.lock().expect("session poisoned");
            if let Some(session) = slot.as_ref() {
                merged.merge(session.stream.stage_metrics());
            }
        }
        merged
    }

    /// Finishes every live session in parallel: borders are drained and all
    /// remaining beats emitted. Idempotent; closed slots are skipped.
    pub fn finish(&self) {
        let ids: Vec<usize> = (0..self.sessions.len()).collect();
        self.par.map(&ids, |&i| {
            let mut slot = self.sessions[i].lock().expect("session poisoned");
            if let Some(session) = slot.as_mut() {
                session.stream.finish();
                session.drain();
            }
        });
    }

    /// Migrates the hub — and every live session — to a retrained firmware
    /// image (model hot-swap), without dropping or duplicating a single
    /// outcome.
    ///
    /// The exclusive borrow *is* the swap barrier: `ingest` takes `&self`,
    /// so no parallel sweep can be in flight while the swap runs, and each
    /// session's mutex serialises the swap against any other reader. Beats
    /// are classified atomically inside the streaming firmware's `push`, so
    /// the swap always lands on a beat boundary — every beat is scored
    /// entirely by the old image or entirely by the new one, never a
    /// mixture. Emitted outcome histories are untouched; sessions keep
    /// their per-patient thresholds and filter state, so no re-calibration
    /// is needed. Sessions added after the swap use the new image.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Embedded`] when the new image's beat window
    /// differs from the deployed one (the streaming windowers are sized for
    /// it); the hub is left unchanged.
    pub fn swap_pipeline(&mut self, firmware: &'fw WbsnFirmware) -> Result<()> {
        if firmware.window != self.firmware.window {
            return Err(CoreError::Embedded(hbc_embedded::EmbeddedError::Dimension(
                format!(
                    "cannot hot-swap to a firmware with window {:?} (deployed: {:?})",
                    firmware.window, self.firmware.window
                ),
            )));
        }
        for slot in &self.sessions {
            let mut slot = slot.lock().expect("session poisoned");
            if let Some(session) = slot.as_mut() {
                session
                    .stream
                    .swap_firmware(firmware)
                    .map_err(CoreError::Embedded)?;
            }
        }
        self.firmware = firmware;
        Ok(())
    }

    /// The firmware image the hub currently deploys to new sessions.
    pub fn firmware(&self) -> &'fw WbsnFirmware {
        self.firmware
    }

    /// The patient identifier of a session.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown or closed session.
    pub fn patient_id(&self, id: SessionId) -> Result<u32> {
        let slot = self.session(id)?.lock().expect("session poisoned");
        Ok(slot.as_ref().ok_or_else(|| Self::closed(id))?.patient_id)
    }

    /// Copy of the outcomes a session has emitted so far.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown or closed session.
    pub fn outcomes(&self, id: SessionId) -> Result<Vec<BeatOutcome>> {
        self.outcomes_since(id, 0)
    }

    /// Copy of the outcomes a session has emitted from index `from` onwards —
    /// the incremental form serving layers poll between ingest batches (each
    /// call clones only the tail the caller has not seen yet).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown or closed session.
    pub fn outcomes_since(&self, id: SessionId, from: usize) -> Result<Vec<BeatOutcome>> {
        let slot = self.session(id)?.lock().expect("session poisoned");
        let session = slot.as_ref().ok_or_else(|| Self::closed(id))?;
        Ok(session.outcomes[from.min(session.outcomes.len())..].to_vec())
    }

    /// Whether any of a session's last `window` emitted outcomes carries an
    /// abnormal prediction — the **priority hook** serving layers use to
    /// protect ARR-flagged streams when shedding load: a session that
    /// recently produced an abnormal beat must keep flowing, a session whose
    /// recent stream is all-normal may have telemetry dropped first.
    /// `window = 0` always reports `false`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown or closed session.
    pub fn recent_abnormal(&self, id: SessionId, window: usize) -> Result<bool> {
        let slot = self.session(id)?.lock().expect("session poisoned");
        let session = slot.as_ref().ok_or_else(|| Self::closed(id))?;
        let tail = &session.outcomes[session.outcomes.len().saturating_sub(window)..];
        Ok(tail.iter().any(|o| o.predicted.is_abnormal()))
    }

    /// Heap bytes a session's retained outcome history occupies — the
    /// hub-side share of a serving layer's per-session memory accounting
    /// (the layer adds its own buffers on top).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown or closed session.
    pub fn session_memory_bytes(&self, id: SessionId) -> Result<usize> {
        let slot = self.session(id)?.lock().expect("session poisoned");
        let session = slot.as_ref().ok_or_else(|| Self::closed(id))?;
        Ok(session.outcomes.capacity() * std::mem::size_of::<BeatOutcome>())
    }

    /// Heap bytes retained across every live session's outcome history —
    /// [`Self::session_memory_bytes`] summed over the hub.
    pub fn memory_footprint(&self) -> usize {
        self.sessions
            .iter()
            .map(|s| {
                s.lock()
                    .expect("session poisoned")
                    .as_ref()
                    .map_or(0, |session| {
                        session.outcomes.capacity() * std::mem::size_of::<BeatOutcome>()
                    })
            })
            .sum()
    }

    /// Total beats emitted across all live sessions so far.
    pub fn total_beats(&self) -> usize {
        self.sessions
            .iter()
            .map(|s| {
                s.lock()
                    .expect("session poisoned")
                    .as_ref()
                    .map_or(0, |session| session.outcomes.len())
            })
            .sum()
    }

    /// Labels one session's emitted beats against reference annotations
    /// (two-pointer position matching within `tolerance` samples; unmatched
    /// beats are ignored, as in the batch firmware report) and returns its
    /// figures of merit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown or closed session.
    pub fn session_report(
        &self,
        id: SessionId,
        annotations: &[Annotation],
        tolerance: usize,
    ) -> Result<EvaluationReport> {
        let slot = self.session(id)?.lock().expect("session poisoned");
        let session = slot.as_ref().ok_or_else(|| Self::closed(id))?;
        Ok(report_for(&session.outcomes, annotations, tolerance))
    }

    /// Fleet-wide report: every listed session is labelled in parallel and
    /// the per-session reports are merged **in the order given** via
    /// [`EvaluationReport::merge`] — bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an unknown or closed session.
    pub fn merged_report(
        &self,
        truths: &[(SessionId, &[Annotation])],
        tolerance: usize,
    ) -> Result<EvaluationReport> {
        for (id, _) in truths {
            if self
                .session(*id)?
                .lock()
                .expect("session poisoned")
                .is_none()
            {
                return Err(Self::closed(*id));
            }
        }
        let reports = self.par.map(truths, |&(id, annotations)| {
            let slot = self.sessions[id.0].lock().expect("session poisoned");
            let session = slot.as_ref().expect("session closed mid-report");
            report_for(&session.outcomes, annotations, tolerance)
        });
        let mut merged = EvaluationReport::new();
        for report in &reports {
            merged.merge(report);
        }
        Ok(merged)
    }
}

/// Labels outcomes by matching their peak positions against annotations and
/// accumulates the confusion counts.
fn report_for(
    outcomes: &[BeatOutcome],
    annotations: &[Annotation],
    tolerance: usize,
) -> EvaluationReport {
    let peaks: Vec<usize> = outcomes.iter().map(|o| o.peak).collect();
    let matching = match_peaks(&peaks, annotations, tolerance);
    let mut report = EvaluationReport::new();
    for (outcome, matched) in outcomes.iter().zip(&matching.matched_annotation) {
        if let Some(ai) = matched {
            report.record(annotations[*ai].class, outcome.predicted);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::pipeline::TrainedSystem;
    use hbc_ecg::record::{EcgRecord, Lead};
    use hbc_ecg::synthetic::SyntheticEcg;
    use hbc_embedded::int_classifier::AlphaQ16;
    use hbc_rp::PackedProjection;
    use std::sync::OnceLock;

    fn system() -> &'static TrainedSystem {
        static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
        SYSTEM.get_or_init(|| TrainedSystem::train(&ExperimentConfig::quick()).expect("training"))
    }

    fn firmware() -> WbsnFirmware {
        let system = system();
        WbsnFirmware::new(
            PackedProjection::from_matrix(&system.pc_downsampled.projection),
            system.wbsn.classifier.clone(),
            AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
            system.config.downsample,
            hbc_ecg::beat::BeatWindow::PAPER,
        )
        .expect("firmware dimensions")
    }

    fn patient_record(seed: u64, beats: usize) -> EcgRecord {
        let mut gen = SyntheticEcg::with_seed(seed);
        let rhythm = gen.rhythm(beats, 0.1, 0.1);
        gen.record(seed as u32, &rhythm, 1).expect("record")
    }

    #[test]
    fn hub_matches_per_patient_batch_processing_for_any_thread_count() {
        let fw = firmware();
        let records: Vec<EcgRecord> = (0..3).map(|i| patient_record(100 + i, 40)).collect();
        let tolerance = (0.06 * records[0].fs) as usize;

        // Reference: the batch firmware on each record, labelled the same
        // way the hub labels streams.
        let mut reference = EvaluationReport::new();
        for record in &records {
            let report = fw.process_record(record).expect("batch");
            let outcomes: Vec<BeatOutcome> = report.beats.clone();
            reference.merge(&report_for(&outcomes, &record.annotations, tolerance));
        }

        for threads in [NonZeroUsize::new(1), NonZeroUsize::new(4)] {
            let mut hub = StreamHub::with_threads(&fw, records[0].fs, threads);
            let ids: Vec<SessionId> = records
                .iter()
                .map(|r| {
                    let thresholds = hub
                        .calibrate_thresholds(r.lead(Lead(0)).expect("lead"))
                        .expect("calibrate");
                    hub.add_patient(r.id, thresholds)
                })
                .collect();
            // Stream every patient concurrently, one-second chunks.
            let chunk = records[0].fs as usize;
            let longest = records.iter().map(EcgRecord::len).max().expect("records");
            let mut offset = 0;
            while offset < longest {
                let feeds: Vec<(SessionId, &[f64])> = records
                    .iter()
                    .zip(&ids)
                    .filter_map(|(r, &id)| {
                        let lead = r.lead(Lead(0)).expect("lead");
                        (offset < lead.len())
                            .then(|| (id, &lead[offset..(offset + chunk).min(lead.len())]))
                    })
                    .collect();
                hub.ingest(&feeds).expect("ingest");
                offset += chunk;
            }
            hub.finish();
            hub.finish(); // idempotent

            let truths: Vec<(SessionId, &[Annotation])> = records
                .iter()
                .zip(&ids)
                .map(|(r, &id)| (id, r.annotations.as_slice()))
                .collect();
            let merged = hub.merged_report(&truths, tolerance).expect("report");
            assert_eq!(merged, reference, "threads = {threads:?}");

            // Per-session reports merge (in session order) to the same
            // fleet-wide report.
            let mut manual = EvaluationReport::new();
            for &(id, anns) in &truths {
                manual.merge(&hub.session_report(id, anns, tolerance).expect("session"));
            }
            assert_eq!(manual, merged);
            assert_eq!(hub.num_sessions(), records.len());
            assert_eq!(hub.total_beats(), merged.total());
            assert_eq!(hub.patient_id(ids[0]).expect("known"), records[0].id);
            assert!(!hub.outcomes(ids[0]).expect("known").is_empty());
        }
    }

    #[test]
    fn close_session_returns_the_full_history_and_frees_the_slot() {
        let fw = firmware();
        let record = patient_record(300, 40);
        let tolerance = (0.06 * record.fs) as usize;
        let mut hub = StreamHub::with_threads(&fw, record.fs, NonZeroUsize::new(2));
        let lead = record.lead(Lead(0)).expect("lead");
        let thresholds = hub.calibrate_thresholds(lead).expect("calibrate");
        let keep = hub.add_patient(1, thresholds.clone());
        let id = hub.add_patient(record.id, thresholds.clone());
        assert_eq!(hub.active_sessions(), 2);

        // Stream in chunks, draining incrementally like the gateway does.
        let mut seen = 0usize;
        for chunk in lead.chunks(997) {
            hub.ingest(&[(id, chunk)]).expect("ingest");
            seen += hub.outcomes_since(id, seen).expect("tail").len();
        }
        let report = hub.close_session(id).expect("close");
        assert_eq!(report.patient_id, record.id);
        assert_eq!(report.samples_pushed, lead.len());
        assert!(report.outcomes.len() >= seen);
        assert_eq!(
            report.forwarded_beats,
            report.outcomes.iter().filter(|o| o.delineated).count()
        );

        // The closed session's history equals the batch-labelled reference.
        let batch = fw.process_record(&record).expect("batch");
        let reference = report_for(&batch.beats, &record.annotations, tolerance);
        assert_eq!(report.labelled(&record.annotations, tolerance), reference);

        // The slot is freed and every accessor now rejects the stale handle.
        assert_eq!(hub.active_sessions(), 1);
        assert_eq!(hub.num_sessions(), 2);
        assert!(hub.ingest(&[(id, &lead[..8])]).is_err());
        assert!(hub.outcomes(id).is_err());
        assert!(hub.outcomes_since(id, 0).is_err());
        assert!(hub.patient_id(id).is_err());
        assert!(hub
            .session_report(id, &record.annotations, tolerance)
            .is_err());
        assert!(hub
            .merged_report(&[(id, &record.annotations)], tolerance)
            .is_err());
        assert!(hub.close_session(id).is_err(), "double close must error");
        hub.finish(); // must skip the hole without panicking

        // Index reuse: the next patient takes the freed slot.
        let reused = hub.add_patient(9, thresholds);
        assert_eq!(reused.index(), id.index());
        assert_eq!(hub.active_sessions(), 2);
        assert_eq!(hub.patient_id(reused).expect("live"), 9);
        assert_eq!(hub.patient_id(keep).expect("live"), 1);
        assert!(hub.outcomes(reused).expect("live").is_empty());
    }

    #[test]
    fn hot_swap_migrates_live_sessions_without_dropping_or_duplicating() {
        let old_fw = firmware();
        // A genuinely retrained image: same geometry, different projection
        // and classifier (fresh training seed), hence a different decision
        // boundary on part of the beats.
        let mut retrain_cfg = ExperimentConfig::quick();
        retrain_cfg.seed = 7777;
        let retrained = TrainedSystem::train(&retrain_cfg).expect("training");
        let new_fw = WbsnFirmware::new(
            PackedProjection::from_matrix(&retrained.pc_downsampled.projection),
            retrained.wbsn.classifier.clone(),
            AlphaQ16::from_f64(retrained.pc_downsampled.alpha_train).expect("alpha in range"),
            retrained.config.downsample,
            hbc_ecg::beat::BeatWindow::PAPER,
        )
        .expect("firmware dimensions");
        let record = patient_record(700, 60);
        let lead = record.lead(Lead(0)).expect("lead");
        let chunk = record.fs as usize;

        // References: the whole stream scored by the old image alone and by
        // the new image alone. Peaks are detector-driven (classifier
        // independent), so outcome i of both references describes the same
        // beat and differs at most in its predicted class.
        let reference = |fw: &WbsnFirmware| -> Vec<BeatOutcome> {
            let mut hub = StreamHub::with_threads(fw, record.fs, NonZeroUsize::new(2));
            let thresholds = hub.calibrate_thresholds(lead).expect("calibrate");
            let id = hub.add_patient(record.id, thresholds);
            for c in lead.chunks(chunk) {
                hub.ingest(&[(id, c)]).expect("ingest");
            }
            hub.finish();
            hub.outcomes(id).expect("live")
        };
        let ref_old = reference(&old_fw);
        let ref_new = reference(&new_fw);
        assert_eq!(ref_old.len(), ref_new.len());
        assert!(
            ref_old != ref_new,
            "the retrained image must actually classify differently"
        );

        // Live migration: stream half, swap, stream the rest.
        let mut hub = StreamHub::with_threads(&old_fw, record.fs, NonZeroUsize::new(2));
        let thresholds = hub.calibrate_thresholds(lead).expect("calibrate");
        let id = hub.add_patient(record.id, thresholds.clone());
        let chunks: Vec<&[f64]> = lead.chunks(chunk).collect();
        let half = chunks.len() / 2;
        for c in &chunks[..half] {
            hub.ingest(&[(id, c)]).expect("ingest");
        }
        let before_swap = hub.outcomes(id).expect("live").len();
        assert!(before_swap > 0, "the prefix must have emitted beats");
        hub.swap_pipeline(&new_fw).expect("compatible image");
        assert!(std::ptr::eq(hub.firmware(), &new_fw));
        for c in &chunks[half..] {
            hub.ingest(&[(id, c)]).expect("ingest");
        }
        hub.finish();
        let migrated = hub.outcomes(id).expect("live");

        // Zero dropped, zero duplicated: same beats as both references, with
        // a single switch point at the swap.
        assert_eq!(migrated.len(), ref_old.len());
        assert_eq!(&migrated[..before_swap], &ref_old[..before_swap]);
        assert_eq!(&migrated[before_swap..], &ref_new[before_swap..]);

        // Swapping to an identical image is a no-op on the outcome stream.
        let mut hub = StreamHub::with_threads(&old_fw, record.fs, NonZeroUsize::new(2));
        let id = hub.add_patient(record.id, thresholds.clone());
        for (i, c) in chunks.iter().enumerate() {
            if i == half {
                hub.swap_pipeline(&old_fw).expect("identity swap");
            }
            hub.ingest(&[(id, c)]).expect("ingest");
        }
        hub.finish();
        assert_eq!(hub.outcomes(id).expect("live"), ref_old);

        // Incompatible geometry is rejected and leaves the hub untouched.
        let mut bad = old_fw.clone();
        bad.window = hbc_ecg::beat::BeatWindow::new(bad.window.pre + 4, bad.window.post);
        assert!(hub.swap_pipeline(&bad).is_err());
        assert!(std::ptr::eq(hub.firmware(), &old_fw));

        // Sessions added after a swap use the new image: stream the same
        // record through a post-swap session and match the new reference.
        let mut hub = StreamHub::with_threads(&old_fw, record.fs, NonZeroUsize::new(2));
        hub.swap_pipeline(&new_fw).expect("compatible image");
        let id = hub.add_patient(record.id, thresholds);
        for c in &chunks {
            hub.ingest(&[(id, c)]).expect("ingest");
        }
        hub.finish();
        assert_eq!(hub.outcomes(id).expect("live"), ref_new);
    }

    #[test]
    fn recent_abnormal_and_memory_accounting_track_the_outcome_stream() {
        let fw = firmware();
        let record = patient_record(410, 40);
        let lead = record.lead(Lead(0)).expect("lead");
        let mut hub = StreamHub::with_threads(&fw, record.fs, NonZeroUsize::new(2));
        let thresholds = hub.calibrate_thresholds(lead).expect("calibrate");
        let id = hub.add_patient(record.id, thresholds);

        // A fresh session has no outcomes: not abnormal, no history bytes.
        assert!(!hub.recent_abnormal(id, 64).expect("live"));
        assert_eq!(hub.session_memory_bytes(id).expect("live"), 0);

        hub.ingest(&[(id, lead)]).expect("ingest");
        hub.finish();
        let outcomes = hub.outcomes(id).expect("live");
        assert!(!outcomes.is_empty());
        let any_abnormal = outcomes.iter().any(|o| o.predicted.is_abnormal());

        // The full-history window agrees with a direct scan; a zero window
        // never reports abnormal; a window of 1 sees exactly the last beat.
        assert_eq!(
            hub.recent_abnormal(id, outcomes.len()).expect("live"),
            any_abnormal
        );
        assert!(!hub.recent_abnormal(id, 0).expect("live"));
        assert_eq!(
            hub.recent_abnormal(id, 1).expect("live"),
            outcomes.last().expect("non-empty").predicted.is_abnormal()
        );

        // Memory accounting covers at least the retained outcomes and the
        // fleet total includes this session.
        let bytes = hub.session_memory_bytes(id).expect("live");
        assert!(bytes >= outcomes.len() * std::mem::size_of::<BeatOutcome>());
        assert!(hub.memory_footprint() >= bytes);

        // Closed sessions drop out of both accessors and the footprint.
        hub.close_session(id).expect("close");
        assert!(hub.recent_abnormal(id, 8).is_err());
        assert!(hub.session_memory_bytes(id).is_err());
        assert_eq!(hub.memory_footprint(), 0);
    }

    #[test]
    fn hub_rejects_bad_batches() {
        let fw = firmware();
        let mut hub = StreamHub::new(&fw, 360.0);
        let thresholds = PeakThresholds {
            first_scale: 1.0,
            cross_scale: vec![1.0; 3],
        };
        let id = hub.add_patient(7, thresholds);
        let chunk = [0.0f64; 16];
        // Unknown session.
        assert!(hub.ingest(&[(SessionId(9), &chunk)]).is_err());
        // Duplicate session in one batch.
        assert!(hub.ingest(&[(id, &chunk), (id, &chunk)]).is_err());
        // Valid batch.
        hub.ingest(&[(id, &chunk)]).expect("ok");
        assert!(hub.outcomes(SessionId(3)).is_err());
        assert!(hub.session_report(SessionId(3), &[], 10).is_err());
        assert!(hub.patient_id(SessionId(3)).is_err());
    }
}
