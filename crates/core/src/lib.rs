//! # hbc-core — the RP-based embedded heartbeat classification framework
//!
//! This crate is the public entry point of the reproduction of
//! *"A Methodology for Embedded Classification of Heartbeats Using Random
//! Projections"* (Braojos, Ansaloni, Atienza — DATE 2013). It ties the
//! substrate crates together:
//!
//! * [`hbc_ecg`] — beats, records, the MIT-BIH reader and the synthetic
//!   dataset used as its documented substitution;
//! * [`hbc_dsp`] — filtering, peak detection and delineation;
//! * [`hbc_rp`] — Achlioptas random projections and their genetic
//!   optimisation;
//! * [`hbc_nfc`] — the floating-point neuro-fuzzy classifier and its
//!   two-step training methodology;
//! * [`hbc_embedded`] — the integer classifier, the IcyHeart platform model
//!   and the complete WBSN firmware;
//! * [`hbc_baseline`] — the PCA comparison point.
//!
//! and exposes, on top of them:
//!
//! * [`config`] — experiment configuration with `quick` / `paper` presets;
//! * [`pipeline`] — training of the PC (floating-point) and WBSN (integer)
//!   pipelines from one dataset;
//! * [`engine`] — a work-stealing parallel runner that evaluates trained
//!   pipelines over beat sets, α sweeps and whole record collections on all
//!   cores, with bit-identical results to the sequential path;
//! * [`stream`] — the live serving layer: a [`StreamHub`] multiplexing many
//!   concurrent per-patient streaming-firmware sessions over the same
//!   parallel runner, with order-deterministic merged reports;
//! * [`experiments`] — one function per table / figure of the paper, each
//!   returning a typed report that prints the corresponding rows.
//!
//! ## Quickstart
//!
//! ```
//! use hbc_core::config::ExperimentConfig;
//! use hbc_core::pipeline::TrainedSystem;
//!
//! // Train the whole system (PC + WBSN variants) on a small synthetic
//! // dataset; `ExperimentConfig::paper()` reproduces the full-scale setup.
//! let config = ExperimentConfig::quick();
//! let system = TrainedSystem::train(&config)?;
//! let report = system.evaluate_pc_on_test()?;
//! println!("NDR = {:.2} %, ARR = {:.2} %", 100.0 * report.ndr(), 100.0 * report.arr());
//! # Ok::<(), hbc_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod experiments;
pub mod pipeline;
pub mod stream;

pub use config::{ExperimentConfig, Scale};
pub use engine::{BeatEvaluator, Engine, EngineConfig, MultiRecordReport};
pub use pipeline::{TrainedSystem, WbsnPipeline, WbsnScratch};
pub use stream::{SessionId, SessionReport, StreamHub};

// Re-export the substrate crates so downstream users need a single
// dependency.
pub use hbc_baseline;
pub use hbc_dsp;
pub use hbc_ecg;
pub use hbc_embedded;
pub use hbc_nfc;
pub use hbc_obs;
pub use hbc_rp;

/// Errors surfaced by the framework crate.
#[derive(Debug)]
pub enum CoreError {
    /// Error from the dataset substrate.
    Ecg(hbc_ecg::EcgError),
    /// Error from the signal-processing substrate.
    Dsp(hbc_dsp::DspError),
    /// Error from the projection crate.
    Rp(hbc_rp::RpError),
    /// Error from the classifier crate.
    Nfc(hbc_nfc::NfcError),
    /// Error from the embedded crate.
    Embedded(hbc_embedded::EmbeddedError),
    /// Error from the PCA baseline.
    Baseline(hbc_baseline::PcaError),
    /// Invalid experiment configuration.
    Config(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Ecg(e) => write!(f, "dataset error: {e}"),
            CoreError::Dsp(e) => write!(f, "signal-processing error: {e}"),
            CoreError::Rp(e) => write!(f, "projection error: {e}"),
            CoreError::Nfc(e) => write!(f, "classifier error: {e}"),
            CoreError::Embedded(e) => write!(f, "embedded error: {e}"),
            CoreError::Baseline(e) => write!(f, "baseline error: {e}"),
            CoreError::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ecg(e) => Some(e),
            CoreError::Dsp(e) => Some(e),
            CoreError::Rp(e) => Some(e),
            CoreError::Nfc(e) => Some(e),
            CoreError::Embedded(e) => Some(e),
            CoreError::Baseline(e) => Some(e),
            CoreError::Config(_) => None,
        }
    }
}

impl From<hbc_ecg::EcgError> for CoreError {
    fn from(e: hbc_ecg::EcgError) -> Self {
        CoreError::Ecg(e)
    }
}
impl From<hbc_dsp::DspError> for CoreError {
    fn from(e: hbc_dsp::DspError) -> Self {
        CoreError::Dsp(e)
    }
}
impl From<hbc_rp::RpError> for CoreError {
    fn from(e: hbc_rp::RpError) -> Self {
        CoreError::Rp(e)
    }
}
impl From<hbc_nfc::NfcError> for CoreError {
    fn from(e: hbc_nfc::NfcError) -> Self {
        CoreError::Nfc(e)
    }
}
impl From<hbc_embedded::EmbeddedError> for CoreError {
    fn from(e: hbc_embedded::EmbeddedError) -> Self {
        CoreError::Embedded(e)
    }
}
impl From<hbc_baseline::PcaError> for CoreError {
    fn from(e: hbc_baseline::PcaError) -> Self {
        CoreError::Baseline(e)
    }
}

/// Convenient result alias for the framework crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_preserve_sources() {
        let e: CoreError = hbc_ecg::EcgError::Format("bad".into()).into();
        assert!(e.to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = hbc_nfc::NfcError::Training("few".into()).into();
        assert!(e.to_string().contains("few"));
        let e = CoreError::Config("nope".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
