//! Parallel multi-record evaluation engine.
//!
//! The experiments of the paper evaluate a trained pipeline over large beat
//! sets — the full Table I test split holds 89 012 beats, and a deployed
//! monitoring service would score many patient records at once. Beat
//! classification is embarrassingly parallel (every decision depends only on
//! one beat and the immutable trained pipeline), so this module provides a
//! work-stealing runner that spreads records, batches of beats, or arbitrary
//! sweep items over all cores.
//!
//! The generic substrate — the scoped-thread pool, the atomic work cursor and
//! the ordered result slots that make the merged [`EvaluationReport`]
//! *bit-identical* to the sequential pass for any thread count — lives in the
//! [`hbc_par`] crate (training needs the same runner without depending on
//! this framework crate). This module layers the domain on top: beat
//! batching, per-batch scratch buffers, report merging in submission order
//! and the record-level drivers.
//!
//! The experiment modules ([`crate::experiments`]) route their dataset-scale
//! evaluations and α sweeps through an [`Engine`], as does
//! [`crate::pipeline::TrainedSystem`].

use std::num::NonZeroUsize;
use std::sync::Mutex;

use hbc_dsp::FrontendScratch;
use hbc_ecg::beat::{Beat, BeatClass, BeatWindow};
use hbc_ecg::record::{EcgRecord, Lead};
use hbc_embedded::firmware::{BeatScratch, FirmwareReport, WbsnFirmware};
use hbc_embedded::int_classifier::AlphaQ16;
use hbc_nfc::metrics::EvaluationReport;
use hbc_nfc::FittedPipeline;
use hbc_par::Par;

use crate::pipeline::WbsnPipeline;
use crate::Result;

/// Configuration of the parallel runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads to use; `None` means one per available core.
    pub threads: Option<NonZeroUsize>,
    /// Number of beats grouped into one work item when evaluating a flat
    /// beat set. Small enough to load-balance, large enough that the atomic
    /// cursor is uncontended.
    pub batch_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: None,
            batch_size: 512,
        }
    }
}

/// Work-stealing parallel evaluator.
///
/// An engine is cheap to construct and holds no threads between calls; each
/// `map`/`evaluate` call spins up a scoped worker pool and tears it down on
/// return, so borrowing pipelines and datasets needs no `'static` bounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Creates an engine with an explicit configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// An engine pinned to one worker — the reference sequential path that
    /// parallel runs are asserted bit-identical against.
    pub fn sequential() -> Self {
        Engine::new(EngineConfig {
            threads: NonZeroUsize::new(1),
            ..EngineConfig::default()
        })
    }

    /// The batch size used when chunking flat collections into work items.
    pub fn batch_size(&self) -> usize {
        self.config.batch_size.max(1)
    }

    /// The generic runner this engine schedules its work on.
    pub fn par(&self) -> Par {
        Par::with_threads(self.config.threads)
    }

    /// The number of workers a call on `items` would use.
    pub fn workers_for(&self, items: usize) -> usize {
        self.par().workers_for(items)
    }

    /// Applies `f` to every item, returning the results in item order
    /// (see [`Par::map`]).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par().map(items, f)
    }

    /// Fallible [`Engine::map`]: short-circuits on the first error *in item
    /// order* (all items still run, but the reported error is deterministic).
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Result<R> + Sync,
    {
        self.par().try_map(items, f)
    }

    /// Evaluates `evaluator` over a flat beat set, batching beats into work
    /// items of `batch_size` and merging the per-batch reports in order.
    ///
    /// The merged report is bit-identical to a sequential
    /// beat-by-beat pass (see [`EvaluationReport::merge`]).
    ///
    /// # Errors
    ///
    /// Returns the first (in beat order) classification error.
    pub fn evaluate_beats<E: BeatEvaluator>(
        &self,
        evaluator: &E,
        beats: &[Beat],
    ) -> Result<EvaluationReport> {
        let batch = self.batch_size();
        let batches: Vec<&[Beat]> = beats.chunks(batch).collect();
        let reports = self.try_map(&batches, |chunk| evaluator.evaluate_batch(chunk))?;
        Ok(merge_in_order(reports))
    }

    /// Evaluates `evaluator` over many annotated records concurrently: each
    /// record is one work item (beat extraction + batched classification),
    /// and the per-record reports are merged in record order.
    ///
    /// # Errors
    ///
    /// Returns the first (in record order) extraction or classification
    /// error.
    pub fn evaluate_records<E: BeatEvaluator>(
        &self,
        evaluator: &E,
        records: &[EcgRecord],
        lead: Lead,
        window: BeatWindow,
    ) -> Result<MultiRecordReport> {
        let per_record = self.try_map(records, |record| {
            let beats = record.extract_beats(lead, window)?;
            // Batch within the record as well so one record's beats share
            // cache-friendly contiguous scans.
            let mut report = EvaluationReport::new();
            for chunk in beats.chunks(self.batch_size()) {
                report.merge(&evaluator.evaluate_batch(chunk)?);
            }
            Ok(RecordReport {
                record_id: record.id,
                beats: beats.len(),
                report,
            })
        })?;
        let mut merged = EvaluationReport::new();
        for record in &per_record {
            merged.merge(&record.report);
        }
        Ok(MultiRecordReport { per_record, merged })
    }

    /// Runs the complete Figure 6 firmware pipeline over many records
    /// concurrently, one record per work item, returning the per-record
    /// [`FirmwareReport`]s in input order (bit-identical to a sequential
    /// pass — each record's outcome depends only on its own samples).
    ///
    /// The conditioning-chain and per-beat working sets are drawn from a
    /// pool bounded by the worker count, so steady-state multi-record
    /// processing reuses a few [`FrontendScratch`]/[`BeatScratch`] pairs
    /// instead of re-allocating the front-end buffers per record.
    ///
    /// # Errors
    ///
    /// Returns the first (in record order) processing error.
    pub fn process_records(
        &self,
        firmware: &WbsnFirmware,
        records: &[EcgRecord],
    ) -> Result<Vec<FirmwareReport>> {
        let pool: Mutex<Vec<(FrontendScratch, BeatScratch)>> = Mutex::new(Vec::new());
        self.try_map(records, |record| {
            let (mut frontend, mut beat) = pool
                .lock()
                .expect("scratch pool poisoned")
                .pop()
                .unwrap_or_default();
            let report = firmware
                .process_record_with(record, &mut frontend, &mut beat)
                .map_err(crate::CoreError::Embedded);
            pool.lock()
                .expect("scratch pool poisoned")
                .push((frontend, beat));
            report
        })
    }
}

/// One beat-classification backend the engine can drive.
///
/// Implementations must be cheap to call from many threads at once; both
/// trained pipelines qualify because classification only reads the trained
/// parameters.
pub trait BeatEvaluator: Sync {
    /// Classifies one beat.
    ///
    /// # Errors
    ///
    /// Returns an error when the beat window does not match the pipeline.
    fn classify_beat(&self, beat: &Beat) -> Result<BeatClass>;

    /// Evaluates one contiguous batch of beats, skipping unlabelled beats.
    ///
    /// The default walks [`Self::classify_beat`] beat by beat; evaluators
    /// whose hot path allocates per beat override this to reuse scratch
    /// buffers across the whole batch (the batch is always processed by a
    /// single worker, so the override needs no synchronisation).
    ///
    /// # Errors
    ///
    /// Returns the first (in beat order) classification error.
    fn evaluate_batch(&self, beats: &[Beat]) -> Result<EvaluationReport> {
        let mut report = EvaluationReport::new();
        for beat in beats {
            if beat.class.index().is_none() {
                continue;
            }
            let predicted = self.classify_beat(beat)?;
            report.record(beat.class, predicted);
        }
        Ok(report)
    }
}

/// The WBSN integer pipeline at its calibrated α.
impl BeatEvaluator for WbsnPipeline {
    fn classify_beat(&self, beat: &Beat) -> Result<BeatClass> {
        self.classify(beat)
    }

    fn evaluate_batch(&self, beats: &[Beat]) -> Result<EvaluationReport> {
        // One scratch per batch: the downsample/quantise/projection buffers
        // are reused across every beat of the batch.
        self.evaluate(beats, self.alpha)
    }
}

/// The WBSN integer pipeline at an explicit α_test (Figure 5 sweeps).
#[derive(Debug, Clone, Copy)]
pub struct WbsnEvaluator<'a> {
    /// The integer deployment being driven.
    pub pipeline: &'a WbsnPipeline,
    /// The α_test operating point.
    pub alpha: AlphaQ16,
}

impl BeatEvaluator for WbsnEvaluator<'_> {
    fn classify_beat(&self, beat: &Beat) -> Result<BeatClass> {
        self.pipeline.classify_with_alpha(beat, self.alpha)
    }

    fn evaluate_batch(&self, beats: &[Beat]) -> Result<EvaluationReport> {
        self.pipeline.evaluate(beats, self.alpha)
    }
}

/// The floating-point PC pipeline at an explicit α.
#[derive(Debug, Clone, Copy)]
pub struct PcEvaluator<'a> {
    /// The fitted floating-point pipeline.
    pub pipeline: &'a FittedPipeline,
    /// The defuzzification coefficient to evaluate at.
    pub alpha: f64,
}

impl BeatEvaluator for PcEvaluator<'_> {
    fn classify_beat(&self, beat: &Beat) -> Result<BeatClass> {
        let coefficients = self
            .pipeline
            .projection
            .try_project(&beat.samples)
            .map_err(crate::CoreError::Rp)?;
        Ok(self
            .pipeline
            .classifier
            .classify(&coefficients, self.alpha)
            .map_err(crate::CoreError::Nfc)?
            .class)
    }
}

/// Evaluation of one record within a [`MultiRecordReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordReport {
    /// Identifier of the evaluated record.
    pub record_id: u32,
    /// Number of beats extracted (and considered) from the record.
    pub beats: usize,
    /// Figures of merit for this record alone.
    pub report: EvaluationReport,
}

/// Aggregated outcome of a multi-record evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiRecordReport {
    /// Per-record reports, in input record order.
    pub per_record: Vec<RecordReport>,
    /// All per-record reports merged (in record order).
    pub merged: EvaluationReport,
}

impl MultiRecordReport {
    /// Total number of classified beats across all records.
    pub fn total_beats(&self) -> usize {
        self.merged.total()
    }

    /// The report of one record, if it was part of the evaluation.
    pub fn record(&self, record_id: u32) -> Option<&RecordReport> {
        self.per_record.iter().find(|r| r.record_id == record_id)
    }
}

/// Merges per-batch reports in submission order.
fn merge_in_order(reports: Vec<EvaluationReport>) -> EvaluationReport {
    let mut merged = EvaluationReport::new();
    for report in &reports {
        merged.merge(report);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::pipeline::TrainedSystem;
    use std::sync::OnceLock;

    fn system() -> &'static TrainedSystem {
        static SYSTEM: OnceLock<TrainedSystem> = OnceLock::new();
        SYSTEM.get_or_init(|| TrainedSystem::train(&ExperimentConfig::quick()).expect("training"))
    }

    /// An engine guaranteed to run real worker threads even on a single-core
    /// host (where `Engine::default()` resolves to the sequential fast path).
    fn four_workers() -> Engine {
        Engine::new(EngineConfig {
            threads: NonZeroUsize::new(4),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = four_workers().map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        // Sequential engine takes the single-worker fast path.
        let seq = Engine::sequential().map(&items, |&x| x * 2);
        assert_eq!(doubled, seq);
    }

    #[test]
    fn try_map_reports_the_first_error_in_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let engine = four_workers();
        let failed = engine.try_map(&items, |&x| -> Result<usize> {
            if x % 10 == 3 {
                Err(crate::CoreError::Config(format!("bad item {x}")))
            } else {
                Ok(x)
            }
        });
        let message = failed.expect_err("items 3, 13, ... fail").to_string();
        assert!(message.contains("bad item 3"), "got: {message}");
    }

    #[test]
    fn workers_never_exceed_items() {
        let engine = Engine::default();
        assert_eq!(engine.workers_for(0), 1);
        assert_eq!(engine.workers_for(1), 1);
        assert!(engine.workers_for(10_000) >= 1);
        let two = Engine::new(EngineConfig {
            threads: NonZeroUsize::new(2),
            ..EngineConfig::default()
        });
        assert_eq!(two.workers_for(10_000), 2);
    }

    #[test]
    fn parallel_beat_evaluation_is_bit_identical_to_the_pipeline_loop() {
        let system = system();
        let reference = system
            .wbsn
            .evaluate(&system.dataset.test, system.wbsn.alpha)
            .expect("sequential evaluation");
        for engine in [
            Engine::sequential(),
            four_workers(),
            // A deliberately tiny batch size maximises merge boundaries.
            Engine::new(EngineConfig {
                threads: NonZeroUsize::new(3),
                batch_size: 7,
            }),
        ] {
            let parallel = engine
                .evaluate_beats(&system.wbsn, &system.dataset.test)
                .expect("parallel evaluation");
            assert_eq!(parallel, reference);
        }
    }

    #[test]
    fn process_records_is_bit_identical_for_any_thread_count() {
        use hbc_ecg::synthetic::SyntheticEcg;
        use hbc_embedded::int_classifier::AlphaQ16;
        use hbc_rp::PackedProjection;

        let system = system();
        let firmware = WbsnFirmware::new(
            PackedProjection::from_matrix(&system.pc_downsampled.projection),
            system.wbsn.classifier.clone(),
            AlphaQ16::from_f64(system.pc_downsampled.alpha_train).expect("alpha in range"),
            system.config.downsample,
            hbc_ecg::beat::BeatWindow::PAPER,
        )
        .expect("firmware dimensions");
        let mut generator = SyntheticEcg::with_seed(41);
        let records: Vec<EcgRecord> = (0..4)
            .map(|i| {
                let rhythm = generator.rhythm(30, 0.1, 0.1);
                generator.record(300 + i, &rhythm, 2).expect("record")
            })
            .collect();

        let reference: Vec<_> = records
            .iter()
            .map(|r| firmware.process_record(r).expect("sequential"))
            .collect();
        for engine in [Engine::sequential(), four_workers()] {
            let parallel = engine
                .process_records(&firmware, &records)
                .expect("parallel");
            assert_eq!(parallel, reference);
        }
    }

    #[test]
    fn pc_evaluator_matches_fitted_pipeline_evaluate() {
        let system = system();
        let alpha = system.pc.alpha_train;
        let reference = system
            .pc
            .evaluate(&system.dataset.test, alpha)
            .expect("sequential evaluation");
        let parallel = four_workers()
            .evaluate_beats(
                &PcEvaluator {
                    pipeline: &system.pc,
                    alpha,
                },
                &system.dataset.test,
            )
            .expect("parallel evaluation");
        assert_eq!(parallel, reference);
    }
}
