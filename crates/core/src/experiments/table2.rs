//! Table II — Normal Discard Rate at a fixed 97 % Abnormal Recognition Rate,
//! varying the number of projected coefficients.
//!
//! Three configurations are compared for k ∈ {8, 16, 32}:
//!
//! * **NDR-PC** — floating-point Gaussian classifier on full-rate
//!   (360 Hz, 200-sample) windows;
//! * **NDR-WBSN** — integer classifier with linearised membership functions
//!   on 4×-downsampled (90 Hz, 50-sample) windows;
//! * **PCA-PC** — the same floating-point classifier fed with PCA
//!   coefficients instead of random projections.
//!
//! As in the paper, the defuzzification coefficient of each configuration is
//! re-calibrated on the test set so that ARR ≥ 97 %, and the NDR obtained at
//! that operating point is reported.

use hbc_baseline::Pca;
use hbc_ecg::beat::Beat;
use hbc_nfc::metrics::{calibrate_alpha, EvaluationReport};
use hbc_nfc::training::TrainingExample;
use hbc_nfc::{NeuroFuzzyClassifier, NfcTrainer};

use crate::config::ExperimentConfig;
use crate::engine::Engine;
use crate::pipeline::TrainedSystem;
use crate::Result;

/// One column of Table II (one coefficient count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Column {
    /// Number of coefficients.
    pub coefficients: usize,
    /// NDR of the floating-point PC configuration (at ARR ≥ target).
    pub ndr_pc: f64,
    /// NDR of the integer WBSN configuration.
    pub ndr_wbsn: f64,
    /// NDR of the PCA baseline.
    pub pca_pc: f64,
    /// The ARR actually achieved by each configuration (PC, WBSN, PCA), for
    /// verification that the calibration target was met.
    pub achieved_arr: [f64; 3],
}

/// The full Table II report.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Report {
    /// One column per swept coefficient count.
    pub columns: Vec<Table2Column>,
    /// The ARR target used for calibration.
    pub target_arr: f64,
}

impl Table2Report {
    /// The column for a given coefficient count, if it was swept.
    pub fn column(&self, coefficients: usize) -> Option<&Table2Column> {
        self.columns.iter().find(|c| c.coefficients == coefficients)
    }

    /// Largest absolute NDR difference between the PC and WBSN rows across
    /// all columns — the quantity the paper argues is "a few percentage
    /// points".
    pub fn max_pc_wbsn_gap(&self) -> f64 {
        self.columns
            .iter()
            .map(|c| (c.ndr_pc - c.ndr_wbsn).abs())
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for Table2Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table II — NDR (%) at ARR >= {:.0} %, varying the coefficient count",
            100.0 * self.target_arr
        )?;
        write!(f, "{:<12}", "coefficients")?;
        for c in &self.columns {
            write!(f, " {:>8}", c.coefficients)?;
        }
        writeln!(f)?;
        for (label, pick) in [
            (
                "NDR-PC",
                (|c: &Table2Column| c.ndr_pc) as fn(&Table2Column) -> f64,
            ),
            ("NDR-WBSN", |c| c.ndr_wbsn),
            ("PCA-PC", |c| c.pca_pc),
        ] {
            write!(f, "{label:<12}")?;
            for c in &self.columns {
                write!(f, " {:>8.2}", 100.0 * pick(c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Runs the Table II experiment.
///
/// # Errors
///
/// Returns an error when the configuration is invalid or training fails.
pub fn table2_ndr(config: &ExperimentConfig) -> Result<Table2Report> {
    table2_ndr_with(&Engine::default(), config)
}

/// [`table2_ndr`] with an explicit evaluation engine: the test-set
/// projections and every α-calibration probe are dataset-scale scans and run
/// on the engine's workers.
///
/// # Errors
///
/// Returns an error when the configuration is invalid or training fails.
pub fn table2_ndr_with(engine: &Engine, config: &ExperimentConfig) -> Result<Table2Report> {
    config.validate()?;
    let mut columns = Vec::with_capacity(config.coefficient_sweep.len());
    for &k in &config.coefficient_sweep {
        let system = TrainedSystem::train_with_coefficients(config, k)?;

        // --- NDR-PC: calibrate α on the test set for the target ARR. ---
        let pc_projected = project_all(engine, &system, &system.dataset.test)?;
        let (_, pc_report) = calibrate_on(
            engine,
            &system.pc.classifier,
            &pc_projected,
            config.target_arr,
        );

        // --- NDR-WBSN: integer pipeline on full-rate windows (it downsamples
        //     and quantises internally). ---
        let (_, wbsn_report) =
            system
                .wbsn
                .calibrate_alpha_with(engine, &system.dataset.test, config.target_arr)?;

        // --- PCA-PC: fit PCA on training set 1, train the same NFC on the
        //     PCA coefficients, calibrate on the test set. ---
        let pca_report = pca_baseline(engine, config, &system, k)?;

        columns.push(Table2Column {
            coefficients: k,
            ndr_pc: pc_report.ndr(),
            ndr_wbsn: wbsn_report.ndr(),
            pca_pc: pca_report.ndr(),
            achieved_arr: [pc_report.arr(), wbsn_report.arr(), pca_report.arr()],
        });
    }
    Ok(Table2Report {
        columns,
        target_arr: config.target_arr,
    })
}

/// Projects every labelled beat with `project` in parallel
/// `engine.batch_size()` batches, preserving beat order.
fn project_batched<F>(
    engine: &Engine,
    beats: &[Beat],
    project: F,
) -> Result<Vec<(hbc_ecg::BeatClass, Vec<f64>)>>
where
    F: Fn(&Beat) -> Result<Vec<f64>> + Sync,
{
    let labelled: Vec<&Beat> = beats.iter().filter(|b| b.class.index().is_some()).collect();
    let batches: Vec<&[&Beat]> = labelled.chunks(engine.batch_size()).collect();
    let projected = engine.try_map(&batches, |batch| {
        batch
            .iter()
            .map(|b| project(b).map(|c| (b.class, c)))
            .collect::<Result<Vec<_>>>()
    })?;
    Ok(projected.into_iter().flatten().collect())
}

/// Projects a beat split with the system's PC projection, keeping labels.
fn project_all(
    engine: &Engine,
    system: &TrainedSystem,
    beats: &[Beat],
) -> Result<Vec<(hbc_ecg::BeatClass, Vec<f64>)>> {
    project_batched(engine, beats, |b| {
        system
            .pc
            .projection
            .try_project(&b.samples)
            .map_err(crate::CoreError::Rp)
    })
}

/// Calibrates α on pre-projected beats for a float classifier. Every probe of
/// the calibration scans all projected beats, parallelised in ordered batches
/// so the report is bit-identical to a sequential scan.
///
/// Unlike the integer pipeline, the float classifier cannot guarantee
/// ARR(α = 1) = 1 (outlier beats saturate to margin 1.0 and stay classified
/// at any α), so when even α = 1 misses the target the best-reachable
/// operating point is reported instead of panicking.
fn calibrate_on(
    engine: &Engine,
    classifier: &NeuroFuzzyClassifier,
    projected: &[(hbc_ecg::BeatClass, Vec<f64>)],
    target_arr: f64,
) -> (f64, EvaluationReport) {
    let batches: Vec<&[(hbc_ecg::BeatClass, Vec<f64>)]> =
        projected.chunks(engine.batch_size()).collect();
    let evaluate = |alpha: f64| {
        let partials = engine.map(&batches, |batch| {
            let mut report = EvaluationReport::new();
            for (truth, coeffs) in *batch {
                let decision = classifier
                    .classify(coeffs, alpha)
                    .expect("projection width matches the classifier");
                report.record(*truth, decision.class);
            }
            report
        });
        let mut report = EvaluationReport::new();
        for partial in &partials {
            report.merge(partial);
        }
        report
    };
    // The fallback re-evaluates α = 1 (calibrate_alpha does not expose the
    // report it probed internally); it only runs in the rare
    // target-unreachable case, where one extra scan is noise next to the
    // ~10 probes of the search itself.
    calibrate_alpha(target_arr, 1e-3, &evaluate).unwrap_or_else(|| (1.0, evaluate(1.0)))
}

/// Trains and evaluates the PCA baseline for one coefficient count.
fn pca_baseline(
    engine: &Engine,
    config: &ExperimentConfig,
    system: &TrainedSystem,
    k: usize,
) -> Result<EvaluationReport> {
    let train_rows: Vec<Vec<f64>> = system
        .dataset
        .training1
        .iter()
        .map(|b| b.samples.clone())
        .collect();
    let pca = Pca::fit(&train_rows, k)?;

    let examples: Vec<TrainingExample> = system
        .dataset
        .training1
        .iter()
        .filter_map(|b| b.class.index().map(|c| (b, c)))
        .map(|(b, class)| TrainingExample::new(pca.project(&b.samples), class))
        .collect();
    let trained = NfcTrainer::new(config.training)
        .train(&examples)
        .map_err(crate::CoreError::Nfc)?;

    let projected = project_batched(
        engine,
        &system.dataset.test,
        |b| Ok(pca.project(&b.samples)),
    )?;
    let (_, report) = calibrate_on(engine, &trained.classifier, &projected, config.target_arr);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single shared quick run: Table II trains three systems, so keep the
    /// sweep small by reusing the quick configuration.
    fn quick_report() -> Table2Report {
        table2_ndr(&ExperimentConfig::quick()).expect("table 2 runs")
    }

    #[test]
    fn all_configurations_reach_high_ndr_at_the_arr_target() {
        let report = quick_report();
        assert_eq!(report.columns.len(), 3);
        for column in &report.columns {
            // Paper conclusion 1: a small number of coefficients already
            // achieves NDR above 90 %; on the synthetic surrogate we accept a
            // slightly wider band but every configuration must stay high.
            assert!(
                column.ndr_pc > 0.80,
                "k={} NDR-PC {} too low",
                column.coefficients,
                column.ndr_pc
            );
            assert!(
                column.ndr_wbsn > 0.70,
                "k={} NDR-WBSN {} too low",
                column.coefficients,
                column.ndr_wbsn
            );
            assert!(
                column.pca_pc > 0.80,
                "k={} PCA-PC {} too low",
                column.coefficients,
                column.pca_pc
            );
            // Calibration must have achieved the requested ARR.
            for (i, arr) in column.achieved_arr.iter().enumerate() {
                assert!(
                    *arr >= 0.97,
                    "config {i} of k={} has ARR {arr}",
                    column.coefficients
                );
            }
        }
    }

    #[test]
    fn wbsn_stays_within_a_few_points_of_pc() {
        // Paper conclusion 2: the embedded approximations cost only a few
        // percentage points of NDR.
        let report = quick_report();
        assert!(
            report.max_pc_wbsn_gap() < 0.15,
            "PC/WBSN gap {} too large",
            report.max_pc_wbsn_gap()
        );
    }

    #[test]
    fn report_formatting_contains_every_row_and_column() {
        let report = quick_report();
        let text = report.to_string();
        assert!(text.contains("NDR-PC"));
        assert!(text.contains("NDR-WBSN"));
        assert!(text.contains("PCA-PC"));
        for c in &report.columns {
            assert!(text.contains(&format!("{:>8}", c.coefficients)));
        }
        assert!(report.column(8).is_some());
        assert!(report.column(64).is_none());
    }
}
