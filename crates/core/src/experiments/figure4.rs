//! Figure 4 — shape of the Gaussian membership function compared with its
//! 4-segment linear approximation and the simpler triangular interpolation.
//!
//! The experiment samples all three curves over `[c − 4.7σ, c]` (the range
//! plotted in the paper) and reports the maximum and mean deviation of each
//! approximation from the true Gaussian, which is the quantitative content
//! behind the qualitative figure.

use hbc_embedded::linear_mf::{LinearizedMf, TriangularMf, MF_FULL_SCALE};
use hbc_nfc::GaussianMf;

use crate::Result;

/// Sampled membership curves plus deviation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipCurves {
    /// Offsets from the centre (in σ units) at which the curves are sampled.
    pub offsets_sigma: Vec<f64>,
    /// Gaussian curve, normalised to `[0, 1]`.
    pub gaussian: Vec<f64>,
    /// 4-segment linearised curve, normalised to `[0, 1]`.
    pub linearized: Vec<f64>,
    /// Triangular curve, normalised to `[0, 1]`.
    pub triangular: Vec<f64>,
    /// Maximum absolute deviation of the linearised curve from the Gaussian.
    pub linearized_max_error: f64,
    /// Maximum absolute deviation of the triangular curve from the Gaussian.
    pub triangular_max_error: f64,
    /// Mean absolute deviation of the linearised curve.
    pub linearized_mean_error: f64,
    /// Mean absolute deviation of the triangular curve.
    pub triangular_mean_error: f64,
}

impl std::fmt::Display for MembershipCurves {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 4 — membership-function approximation error")?;
        writeln!(
            f,
            "{:<22} {:>12} {:>12}",
            "approximation", "max error", "mean error"
        )?;
        writeln!(
            f,
            "{:<22} {:>12.4} {:>12.4}",
            "4-segment linear", self.linearized_max_error, self.linearized_mean_error
        )?;
        writeln!(
            f,
            "{:<22} {:>12.4} {:>12.4}",
            "triangular", self.triangular_max_error, self.triangular_mean_error
        )?;
        Ok(())
    }
}

/// Samples the three membership curves of Figure 4 at `points` offsets over
/// `[−4.7σ, 0]`.
///
/// # Errors
///
/// Returns [`crate::CoreError::Config`] when fewer than two points are
/// requested.
pub fn figure4_curves(points: usize) -> Result<MembershipCurves> {
    if points < 2 {
        return Err(crate::CoreError::Config(
            "at least two sample points are required".into(),
        ));
    }
    // Work in a concrete integer domain representative of projected
    // coefficients: σ = 400 integer units.
    let sigma = 400.0f64;
    let center = 0i32;
    let gaussian = GaussianMf::new(center as f64, sigma);
    let s = (2.35 * sigma).round() as i32;
    let linear = LinearizedMf::new(center, s);
    let triangle = TriangularMf::new(center, s);

    let mut offsets_sigma = Vec::with_capacity(points);
    let mut g = Vec::with_capacity(points);
    let mut l = Vec::with_capacity(points);
    let mut t = Vec::with_capacity(points);
    for i in 0..points {
        let frac = i as f64 / (points - 1) as f64;
        let offset_sigma = -4.7 * (1.0 - frac);
        let x = (offset_sigma * sigma).round() as i32;
        offsets_sigma.push(offset_sigma);
        g.push(gaussian.grade(x as f64));
        l.push(linear.grade(x) as f64 / MF_FULL_SCALE as f64);
        t.push(triangle.grade(x) as f64 / MF_FULL_SCALE as f64);
    }

    let errors = |approx: &[f64]| -> (f64, f64) {
        let diffs: Vec<f64> = approx.iter().zip(&g).map(|(a, b)| (a - b).abs()).collect();
        let max = diffs.iter().cloned().fold(0.0, f64::max);
        let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
        (max, mean)
    };
    let (linearized_max_error, linearized_mean_error) = errors(&l);
    let (triangular_max_error, triangular_mean_error) = errors(&t);

    Ok(MembershipCurves {
        offsets_sigma,
        gaussian: g,
        linearized: l,
        triangular: t,
        linearized_max_error,
        triangular_max_error,
        linearized_mean_error,
        triangular_mean_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_the_requested_resolution() {
        let curves = figure4_curves(100).expect("curves");
        assert_eq!(curves.gaussian.len(), 100);
        assert_eq!(curves.linearized.len(), 100);
        assert_eq!(curves.triangular.len(), 100);
        assert!(figure4_curves(1).is_err());
    }

    #[test]
    fn linearized_tracks_the_gaussian_better_than_triangular() {
        let curves = figure4_curves(200).expect("curves");
        assert!(
            curves.linearized_mean_error < curves.triangular_mean_error,
            "linear mean error {} should beat triangular {}",
            curves.linearized_mean_error,
            curves.triangular_mean_error
        );
        assert!(curves.linearized_max_error < 0.15);
    }

    #[test]
    fn all_curves_peak_at_the_center_and_vanish_far_away() {
        let curves = figure4_curves(200).expect("curves");
        let last = curves.gaussian.len() - 1;
        // The centre (offset 0) is the last sample.
        assert!((curves.gaussian[last] - 1.0).abs() < 1e-9);
        assert!(curves.linearized[last] > 0.999);
        assert!(curves.triangular[last] > 0.999);
        // At −4.7σ (= 2S) the triangular curve is already zero, the
        // linearised one keeps its 1-LSB floor, and the Gaussian is tiny.
        assert!(curves.gaussian[0] < 1e-4);
        assert!(curves.triangular[0] == 0.0);
        assert!(curves.linearized[0] > 0.0);
    }

    #[test]
    fn display_reports_both_approximations() {
        let text = figure4_curves(50).expect("curves").to_string();
        assert!(text.contains("4-segment linear"));
        assert!(text.contains("triangular"));
    }
}
