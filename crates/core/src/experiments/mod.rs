//! Experiment harness: one module per table / figure of the paper.
//!
//! | module | paper artefact | produced rows |
//! |---|---|---|
//! | [`table1`] | Table I | dataset composition per split |
//! | [`table2`] | Table II | NDR at ARR ≥ 97 % for k = 8/16/32, rows NDR-PC / NDR-WBSN / PCA-PC |
//! | [`figure4`] | Figure 4 | Gaussian vs linearised vs triangular membership curves |
//! | [`figure5`] | Figure 5 | NDR/ARR pareto fronts per membership family |
//! | [`table3`] | Table III | code size + duty cycle of the four sub-systems |
//! | [`energy`] | Section IV-E | computation / wireless / total energy savings |
//!
//! Every experiment takes an [`crate::ExperimentConfig`]; use
//! [`crate::ExperimentConfig::quick`] for fast runs and
//! [`crate::ExperimentConfig::paper`] for the full-scale reproduction. The
//! benches in `crates/bench` and the examples at the workspace root call
//! exactly these functions.

pub mod energy;
pub mod figure4;
pub mod figure5;
pub mod table1;
pub mod table2;
pub mod table3;

pub use energy::{energy_report, EnergyExperiment};
pub use figure4::{figure4_curves, MembershipCurves};
pub use figure5::{figure5_pareto, Figure5Report, MfFamily};
pub use table1::{table1_composition, Table1Report};
pub use table2::{table2_ndr, Table2Report};
pub use table3::{table3_runtime, Table3Report};
