//! Section IV-E — improvement of energy efficiency.
//!
//! The experiment combines the duty-cycle model (Table III) with the
//! transmission policy comparison: the baseline node delineates every beat
//! and transmits all nine fiducial points per beat, while the proposed node
//! transmits only the R-peak of beats classified as normal and the full
//! fiducial set of forwarded beats. The paper reports a 63 % computation
//! energy saving, a 68 % wireless energy saving and an estimated 23 % total
//! node energy saving (computation + communication accounting for ≈34 % of a
//! typical WBSN budget).

use hbc_embedded::cycles::{CycleModel, Workload};
use hbc_embedded::energy::SessionStats;
use hbc_embedded::platform::IcyHeartPlatform;
use hbc_embedded::{EnergyModel, EnergyReport};

use crate::config::ExperimentConfig;
use crate::pipeline::TrainedSystem;
use crate::Result;

/// The energy-efficiency results of Section IV-E.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyExperiment {
    /// Underlying energy report (absolute mJ figures for the session).
    pub report: EnergyReport,
    /// Fraction of test beats the classifier forwarded.
    pub forwarded_fraction: f64,
    /// NDR measured at the operating point.
    pub ndr: f64,
    /// ARR measured at the operating point.
    pub arr: f64,
    /// Relative reduction of the signal-processing energy (paper: 63 %).
    pub compute_reduction: f64,
    /// Relative reduction of the wireless energy (paper: 68 %).
    pub radio_reduction: f64,
    /// Estimated reduction of the total node energy (paper: ≈23 %).
    pub total_reduction: f64,
}

impl std::fmt::Display for EnergyExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Section IV-E — energy efficiency of the proposed system")?;
        writeln!(
            f,
            "operating point: NDR = {:.2} %, ARR = {:.2} %, forwarded = {:.1} %",
            100.0 * self.ndr,
            100.0 * self.arr,
            100.0 * self.forwarded_fraction
        )?;
        writeln!(
            f,
            "signal-processing energy reduction : {:>5.1} %  (paper: 63 %)",
            100.0 * self.compute_reduction
        )?;
        writeln!(
            f,
            "wireless energy reduction          : {:>5.1} %  (paper: 68 %)",
            100.0 * self.radio_reduction
        )?;
        writeln!(
            f,
            "estimated total node reduction     : {:>5.1} %  (paper: ~23 %)",
            100.0 * self.total_reduction
        )?;
        Ok(())
    }
}

/// Runs the energy experiment.
///
/// # Errors
///
/// Returns an error when the configuration is invalid or training fails.
pub fn energy_report(config: &ExperimentConfig) -> Result<EnergyExperiment> {
    config.validate()?;
    let system = TrainedSystem::train(config)?;
    let evaluation = system.evaluate_wbsn_on_test()?;
    let forwarded_fraction = evaluation.binary.forwarded_fraction();

    let total_beats = evaluation.total();
    let stats = SessionStats {
        total_beats,
        forwarded_beats: (total_beats as f64 * forwarded_fraction).round() as usize,
        duration_s: total_beats as f64 / 1.2, // the workload's average heart rate
    };

    let platform = IcyHeartPlatform::paper();
    let duty = CycleModel::new(platform).duty_cycles(
        &system.wbsn.projection,
        &system.wbsn.classifier,
        &Workload::paper(forwarded_fraction),
    );
    let report = EnergyModel::paper().report(&duty, &stats);

    Ok(EnergyExperiment {
        report,
        forwarded_fraction,
        ndr: evaluation.ndr(),
        arr: evaluation.arr(),
        compute_reduction: report.compute_reduction(),
        radio_reduction: report.radio_reduction(),
        total_reduction: report.total_node_reduction(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn experiment() -> &'static EnergyExperiment {
        static EXPERIMENT: OnceLock<EnergyExperiment> = OnceLock::new();
        EXPERIMENT.get_or_init(|| energy_report(&ExperimentConfig::quick()).expect("energy runs"))
    }

    #[test]
    fn savings_have_the_papers_shape() {
        let e = experiment();
        // Both savings must be substantial (the paper reports 63 % and 68 %);
        // on the synthetic surrogate we accept a band around those values.
        assert!(
            e.compute_reduction > 0.35 && e.compute_reduction < 0.85,
            "compute reduction {}",
            e.compute_reduction
        );
        assert!(
            e.radio_reduction > 0.4 && e.radio_reduction < 0.95,
            "radio reduction {}",
            e.radio_reduction
        );
        // Total node reduction is the budget-weighted combination (≈23 % in
        // the paper).
        assert!(
            e.total_reduction > 0.1 && e.total_reduction < 0.4,
            "total reduction {}",
            e.total_reduction
        );
        // Sanity: the operating point still recognises abnormal beats.
        assert!(e.arr > 0.8);
        assert!(e.ndr > 0.5);
    }

    #[test]
    fn absolute_energies_are_consistent_with_the_reductions() {
        let e = experiment();
        assert!(e.report.gated_compute_mj < e.report.baseline_compute_mj);
        assert!(e.report.gated_radio_mj < e.report.baseline_radio_mj);
        let recomputed = 1.0 - e.report.gated_radio_mj / e.report.baseline_radio_mj;
        assert!((recomputed - e.radio_reduction).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_all_three_savings() {
        let text = experiment().to_string();
        assert!(text.contains("signal-processing energy reduction"));
        assert!(text.contains("wireless energy reduction"));
        assert!(text.contains("total node reduction"));
    }
}
