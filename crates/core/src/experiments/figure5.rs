//! Figure 5 — NDR/ARR pareto fronts of the Gaussian, linearised and
//! triangular membership-function families.
//!
//! As in the paper, the classifier is trained once (8 coefficients, 50
//! samples at 90 Hz, α_train fixed for ARR ≥ 97 % on training set 2); the
//! α_test coefficient is then swept on the test set to trace the NDR/ARR
//! trade-off of each membership family.

use hbc_embedded::int_classifier::AlphaQ16;
use hbc_embedded::MembershipKind;
use hbc_nfc::metrics::{pareto_front, ParetoPoint};

use crate::config::ExperimentConfig;
use crate::engine::Engine;
use crate::pipeline::TrainedSystem;
use crate::Result;

/// Membership-function family compared in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MfFamily {
    /// Floating-point Gaussian membership functions (the PC reference).
    Gaussian,
    /// Integer 4-segment linearised membership functions.
    Linearized,
    /// Integer triangular membership functions.
    Triangular,
}

impl std::fmt::Display for MfFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MfFamily::Gaussian => write!(f, "gaussian"),
            MfFamily::Linearized => write!(f, "linear approx"),
            MfFamily::Triangular => write!(f, "triangular"),
        }
    }
}

/// The pareto fronts of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure5Report {
    /// Raw sweep points per family (before pareto filtering).
    pub sweeps: Vec<(MfFamily, Vec<ParetoPoint>)>,
    /// Pareto-optimal fronts per family.
    pub fronts: Vec<(MfFamily, Vec<ParetoPoint>)>,
}

impl Figure5Report {
    /// The pareto front of one family.
    pub fn front(&self, family: MfFamily) -> &[ParetoPoint] {
        self.fronts
            .iter()
            .find(|(f, _)| *f == family)
            .map(|(_, pts)| pts.as_slice())
            .unwrap_or(&[])
    }

    /// Best NDR a family achieves at (or above) a given ARR, if any sweep
    /// point reaches it.
    pub fn ndr_at_arr(&self, family: MfFamily, min_arr: f64) -> Option<f64> {
        self.sweeps
            .iter()
            .find(|(f, _)| *f == family)
            .and_then(|(_, pts)| {
                pts.iter()
                    .filter(|p| p.arr >= min_arr)
                    .map(|p| p.ndr)
                    .fold(None, |best: Option<f64>, ndr| {
                        Some(best.map_or(ndr, |b| b.max(ndr)))
                    })
            })
    }
}

impl std::fmt::Display for Figure5Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 5 — NDR/ARR pareto fronts per membership family")?;
        for (family, front) in &self.fronts {
            writeln!(f, "  {family}:")?;
            for p in front {
                writeln!(
                    f,
                    "    alpha = {:>6.3}   ARR = {:>6.2} %   NDR = {:>6.2} %",
                    p.alpha,
                    100.0 * p.arr,
                    100.0 * p.ndr
                )?;
            }
        }
        Ok(())
    }
}

/// Runs the Figure 5 experiment.
///
/// # Errors
///
/// Returns an error when the configuration is invalid or training fails.
pub fn figure5_pareto(config: &ExperimentConfig) -> Result<Figure5Report> {
    figure5_pareto_with(&Engine::default(), config)
}

/// [`figure5_pareto`] with an explicit evaluation engine: the α_test points
/// of each family are independent full-test-set scans, so the engine spreads
/// them over its workers (the sweep order of the report is preserved).
///
/// # Errors
///
/// Returns an error when the configuration is invalid or training fails.
pub fn figure5_pareto_with(engine: &Engine, config: &ExperimentConfig) -> Result<Figure5Report> {
    config.validate()?;
    let system = TrainedSystem::train(config)?;
    let alphas: Vec<f64> = (0..config.pareto_points)
        .map(|i| i as f64 / (config.pareto_points - 1) as f64)
        .collect();

    let mut sweeps = Vec::new();

    // Gaussian (floating point) on the downsampled windows, like the WBSN
    // variants, so the three families differ only by the membership shape.
    // Each α point scans the whole test split sequentially; the engine
    // parallelises across points instead of within them.
    let gaussian_points = engine.try_map(&alphas, |&alpha| {
        let report = system
            .pc_downsampled
            .evaluate(&system.dataset_downsampled.test, alpha)
            .map_err(crate::CoreError::Nfc)?;
        Ok(ParetoPoint {
            alpha,
            ndr: report.ndr(),
            arr: report.arr(),
        })
    })?;
    sweeps.push((MfFamily::Gaussian, gaussian_points));

    // Integer families.
    for (family, kind) in [
        (MfFamily::Linearized, MembershipKind::Linearized),
        (MfFamily::Triangular, MembershipKind::Triangular),
    ] {
        let pipeline = system.wbsn_with_kind(kind)?;
        let points = engine.try_map(&alphas, |&alpha| {
            let report = pipeline.evaluate(&system.dataset.test, AlphaQ16::from_f64(alpha)?)?;
            Ok(ParetoPoint {
                alpha,
                ndr: report.ndr(),
                arr: report.arr(),
            })
        })?;
        sweeps.push((family, points));
    }

    let fronts = sweeps
        .iter()
        .map(|(family, pts)| (*family, pareto_front(pts)))
        .collect();
    Ok(Figure5Report { sweeps, fronts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Figure 5 trains the full system; run it once and share the report
    /// across tests to keep the suite fast.
    fn report() -> &'static Figure5Report {
        static REPORT: OnceLock<Figure5Report> = OnceLock::new();
        REPORT.get_or_init(|| figure5_pareto(&ExperimentConfig::quick()).expect("figure 5 runs"))
    }

    #[test]
    fn every_family_produces_a_front() {
        let r = report();
        assert_eq!(r.sweeps.len(), 3);
        assert_eq!(r.fronts.len(), 3);
        for family in [
            MfFamily::Gaussian,
            MfFamily::Linearized,
            MfFamily::Triangular,
        ] {
            assert!(
                !r.front(family).is_empty(),
                "family {family} has an empty pareto front"
            );
        }
    }

    #[test]
    fn arr_is_monotone_in_alpha_for_every_family() {
        let r = report();
        for (family, points) in &r.sweeps {
            for w in points.windows(2) {
                assert!(
                    w[1].arr >= w[0].arr - 1e-9,
                    "{family}: ARR decreased from {} to {} as alpha grew",
                    w[0].arr,
                    w[1].arr
                );
            }
        }
    }

    #[test]
    fn linearized_follows_gaussian_and_beats_triangular_at_high_arr() {
        // The paper's qualitative conclusion: at high recognition rates the
        // linearised classifier stays close to the Gaussian one, while the
        // triangular variant falls behind.
        let r = report();
        let target = 0.97;
        let gaussian = r.ndr_at_arr(MfFamily::Gaussian, target);
        let linearized = r.ndr_at_arr(MfFamily::Linearized, target);
        let triangular = r.ndr_at_arr(MfFamily::Triangular, target);
        let (g, l) = (gaussian.unwrap_or(0.0), linearized.unwrap_or(0.0));
        assert!(g > 0.5, "gaussian NDR at 97% ARR is {g}");
        assert!(
            l > g - 0.2,
            "linearised NDR {l} should stay within a few points of gaussian {g}"
        );
        // Triangular either fails to reach the ARR target at a useful NDR or
        // trails the linearised variant.
        let t = triangular.unwrap_or(0.0);
        assert!(
            t <= l + 0.05,
            "triangular NDR {t} should not beat the linearised variant {l}"
        );
    }

    #[test]
    fn fronts_are_pareto_optimal() {
        let r = report();
        for (_, front) in &r.fronts {
            for a in front {
                for b in front {
                    let dominates =
                        (b.ndr >= a.ndr && b.arr >= a.arr) && (b.ndr > a.ndr || b.arr > a.arr);
                    assert!(!dominates, "front contains a dominated point");
                }
            }
        }
    }

    #[test]
    fn display_lists_every_family() {
        let text = report().to_string();
        assert!(text.contains("gaussian"));
        assert!(text.contains("linear approx"));
        assert!(text.contains("triangular"));
    }
}
