//! Table III — code size and duty cycle of the embedded sub-systems on the
//! IcyHeart platform at 6 MHz.
//!
//! The four configurations follow Figure 6 of the paper:
//!
//! 1. the RP classifier alone,
//! 2. sub-system (1): RP classifier + single-lead filtering + peak detection,
//! 3. sub-system (2): always-on three-lead delineation,
//! 4. sub-system (3): the proposed system, with delineation gated by the
//!    classifier.
//!
//! Duty cycles come from the operation-count model of `hbc-embedded::cycles`;
//! the *forwarded fraction* that drives the gated configuration is not
//! assumed — it is measured by running the trained WBSN classifier on the
//! test split of the configured dataset.

use hbc_dsp::MorphologicalFilter;
use hbc_embedded::cycles::{
    delineation_model_speedup, morphology_model_speedup, CycleModel, Workload,
};
use hbc_embedded::memory::MemoryModel;
use hbc_embedded::platform::IcyHeartPlatform;

use crate::config::ExperimentConfig;
use crate::pipeline::TrainedSystem;
use crate::Result;

/// One row of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Configuration name as used in the paper.
    pub name: &'static str,
    /// Code + data size in KB.
    pub code_size_kib: f64,
    /// Duty cycle (fraction of CPU time) at 6 MHz.
    pub duty_cycle: f64,
}

/// The full Table III report.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Report {
    /// Rows in the paper's order: RP classifier, sub-system (1), (2), (3).
    pub rows: [Table3Row; 4],
    /// Fraction of test beats the classifier forwarded to the delineator
    /// (drives the gated duty cycle).
    pub forwarded_fraction: f64,
    /// Run-time reduction of the proposed system over always-on delineation.
    pub runtime_reduction: f64,
    /// Memory overhead of the proposed system over the delineation-only
    /// system, in KB.
    pub memory_overhead_kib: f64,
    /// Cost-model delta of the morphology stage: how many times cheaper the
    /// shipped monotone-deque kernel is charged than the naive window scan
    /// the model used before (and that a literal reading of the original
    /// firmware loop would charge). Duty cycles above already reflect the
    /// deque cost.
    pub morphology_model_speedup: f64,
    /// Cost-model delta of the MMD delineation stage: how many times cheaper
    /// the wedge-kernel charge is than the naive per-output window rescan
    /// the model used before. Duty cycles above already reflect the wedge
    /// cost, which is why the modelled run-time reduction sits below the
    /// paper's 63 % (the always-on delineator got cheaper in absolute
    /// terms, shrinking the relative benefit of gating it).
    pub delineation_model_speedup: f64,
}

impl std::fmt::Display for Table3Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table III — code size and duty cycle on the IcyHeart platform (6 MHz)"
        )?;
        writeln!(
            f,
            "{:<38} {:>14} {:>12}",
            "", "Code Size (KB)", "Duty Cycle"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<38} {:>14.2} {:>12.3}",
                row.name, row.code_size_kib, row.duty_cycle
            )?;
        }
        writeln!(
            f,
            "forwarded fraction = {:.1} %, run-time reduction = {:.1} %, memory overhead = {:.1} KB",
            100.0 * self.forwarded_fraction,
            100.0 * self.runtime_reduction,
            self.memory_overhead_kib
        )?;
        writeln!(
            f,
            "morphology charged at the O(n) deque-kernel cost ({:.0}x below the naive window \
             scan; filtering duty cycles shrink accordingly vs the paper's firmware)",
            self.morphology_model_speedup
        )?;
        writeln!(
            f,
            "MMD delineation charged at the wedge-kernel cost ({:.1}x below the naive rescan; \
             the always-on delineator gets cheaper, so the modelled gating benefit sits below \
             the paper's 63 %)",
            self.delineation_model_speedup
        )?;
        Ok(())
    }
}

/// Runs the Table III experiment.
///
/// # Errors
///
/// Returns an error when the configuration is invalid or training fails.
pub fn table3_runtime(config: &ExperimentConfig) -> Result<Table3Report> {
    config.validate()?;
    let system = TrainedSystem::train(config)?;

    // Measure the forwarded fraction with the trained integer classifier on
    // the test split.
    let report = system.evaluate_wbsn_on_test()?;
    let forwarded_fraction = report.binary.forwarded_fraction();

    let platform = IcyHeartPlatform::paper();
    let cycle_model = CycleModel::new(platform);
    let workload = Workload::paper(forwarded_fraction);
    let duty = cycle_model.duty_cycles(&system.wbsn.projection, &system.wbsn.classifier, &workload);

    let memory = MemoryModel::default();
    let rp_mem = memory.rp_classifier(&system.wbsn.projection, &system.wbsn.classifier);
    let s1_mem = memory.subsystem1(&system.wbsn.projection, &system.wbsn.classifier);
    let s2_mem = memory.subsystem2(workload.delineation_leads);
    let s3_mem = memory.subsystem3(
        &system.wbsn.projection,
        &system.wbsn.classifier,
        workload.delineation_leads,
    );

    let rows = [
        Table3Row {
            name: "RP-classifier",
            code_size_kib: rp_mem.total_kib(),
            duty_cycle: duty.rp_classifier,
        },
        Table3Row {
            name: "RP + filtering + peak detection (1)",
            code_size_kib: s1_mem.total_kib(),
            duty_cycle: duty.subsystem1,
        },
        Table3Row {
            name: "Multi-lead delineation (2)",
            code_size_kib: s2_mem.total_kib(),
            duty_cycle: duty.subsystem2,
        },
        Table3Row {
            name: "Proposed system (3)",
            code_size_kib: s3_mem.total_kib(),
            duty_cycle: duty.subsystem3,
        },
    ];

    Ok(Table3Report {
        rows,
        forwarded_fraction,
        runtime_reduction: duty.runtime_reduction(),
        memory_overhead_kib: s3_mem.total_kib() - s2_mem.total_kib(),
        morphology_model_speedup: morphology_model_speedup(
            &MorphologicalFilter::for_sampling_rate(workload.fs),
            &platform,
        ),
        delineation_model_speedup: delineation_model_speedup(
            workload.delineation_window,
            &hbc_embedded::cycles::delineation_scales(workload.fs),
            &platform,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn report() -> &'static Table3Report {
        static REPORT: OnceLock<Table3Report> = OnceLock::new();
        REPORT.get_or_init(|| table3_runtime(&ExperimentConfig::quick()).expect("table 3 runs"))
    }

    #[test]
    fn rows_follow_the_papers_ordering() {
        let r = report();
        // Code size: classifier < (1) < (2) < (3).
        assert!(r.rows[0].code_size_kib < r.rows[1].code_size_kib);
        assert!(r.rows[1].code_size_kib < r.rows[2].code_size_kib);
        assert!(r.rows[2].code_size_kib < r.rows[3].code_size_kib);
        // Duty cycle: classifier tiny, (3) well below (2).
        assert!(
            r.rows[0].duty_cycle < 0.01,
            "classifier duty {}",
            r.rows[0].duty_cycle
        );
        assert!(r.rows[1].duty_cycle < r.rows[2].duty_cycle);
        assert!(r.rows[3].duty_cycle < r.rows[2].duty_cycle);
    }

    #[test]
    fn classifier_resources_match_the_papers_scale() {
        let r = report();
        // Paper: less than 2 KB and less than 1 % duty cycle for the
        // RP classifier.
        assert!(r.rows[0].code_size_kib < 2.0);
        assert!(r.rows[0].duty_cycle < 0.01);
    }

    #[test]
    fn gating_yields_a_substantial_runtime_reduction() {
        let r = report();
        assert!(
            r.runtime_reduction > 0.35 && r.runtime_reduction < 0.85,
            "run-time reduction {} outside the plausible band around the paper's 63 %",
            r.runtime_reduction
        );
        // The forwarded fraction is the abnormal share plus misclassified
        // normals; for the synthetic test split it must stay well below 1.
        assert!(r.forwarded_fraction > 0.05 && r.forwarded_fraction < 0.6);
        // Memory overhead of keeping the classifier resident is around the
        // 30 KB reported by the paper.
        assert!(
            r.memory_overhead_kib > 20.0 && r.memory_overhead_kib < 40.0,
            "memory overhead {} KB",
            r.memory_overhead_kib
        );
    }

    #[test]
    fn display_contains_every_row_and_the_morphology_model_callout() {
        let r = report();
        let text = r.to_string();
        for name in [
            "RP-classifier",
            "RP + filtering + peak detection (1)",
            "Multi-lead delineation (2)",
            "Proposed system (3)",
        ] {
            assert!(text.contains(name), "missing row {name}");
        }
        assert!(
            text.contains("deque-kernel cost"),
            "missing morphology model callout:\n{text}"
        );
        assert!(
            text.contains("wedge-kernel cost"),
            "missing delineation model callout:\n{text}"
        );
        assert!(
            r.morphology_model_speedup > 10.0,
            "deque-vs-naive model delta {} should be an order of magnitude",
            r.morphology_model_speedup
        );
        assert!(
            r.delineation_model_speedup > 3.0,
            "wedge-vs-naive delineation delta {} should be substantial",
            r.delineation_model_speedup
        );
    }
}
