//! Table I — size and composition of the two training sets and of the test
//! set.

use hbc_ecg::beat::NUM_CLASSES;
use hbc_ecg::dataset::{Dataset, Split};

use crate::config::ExperimentConfig;
use crate::Result;

/// The composition rows of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Report {
    /// Per-split class counts, in split order (training 1, training 2, test)
    /// and class order (N, V, L).
    pub rows: [(Split, [usize; NUM_CLASSES]); 3],
}

impl Table1Report {
    /// Total number of beats across all splits.
    pub fn total(&self) -> usize {
        self.rows
            .iter()
            .map(|(_, counts)| counts.iter().sum::<usize>())
            .sum()
    }

    /// Counts of one split.
    pub fn split(&self, split: Split) -> [usize; NUM_CLASSES] {
        self.rows
            .iter()
            .find(|(s, _)| *s == split)
            .map(|(_, c)| *c)
            .expect("all three splits are always present")
    }
}

impl std::fmt::Display for Table1Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table I — dataset composition")?;
        writeln!(
            f,
            "{:<16} {:>8} {:>8} {:>8} {:>8}",
            "split", "N", "V", "L", "Total"
        )?;
        for (split, counts) in &self.rows {
            writeln!(
                f,
                "{:<16} {:>8} {:>8} {:>8} {:>8}",
                split.to_string(),
                counts[0],
                counts[1],
                counts[2],
                counts.iter().sum::<usize>()
            )?;
        }
        Ok(())
    }
}

/// Builds the Table I report by materialising the dataset of `config` and
/// counting its beats (so the report reflects what the experiments actually
/// train on, not just the specification).
///
/// # Errors
///
/// Returns an error when the configuration is invalid.
pub fn table1_composition(config: &ExperimentConfig) -> Result<Table1Report> {
    config.validate()?;
    let dataset = Dataset::synthetic(config.dataset, config.seed);
    Ok(Table1Report {
        rows: [
            (Split::Training1, dataset.class_counts(Split::Training1)),
            (Split::Training2, dataset.class_counts(Split::Training2)),
            (Split::Test, dataset.class_counts(Split::Test)),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_matches_its_specification() {
        let config = ExperimentConfig::quick();
        let report = table1_composition(&config).expect("report");
        assert_eq!(
            report.split(Split::Training1),
            config.dataset.training1.counts
        );
        assert_eq!(report.split(Split::Test), config.dataset.test.counts);
        assert_eq!(report.total(), config.dataset.total());
        let text = report.to_string();
        assert!(text.contains("training set 1"));
        assert!(text.contains("test set"));
    }

    #[test]
    fn paper_specification_reproduces_table1_exactly() {
        // The specification itself (not the materialised beats, which would
        // take a while to generate) must carry the exact Table I numbers.
        let spec = ExperimentConfig::paper().dataset;
        assert_eq!(spec.training1.counts, [150, 150, 150]);
        assert_eq!(spec.training2.counts, [10_024, 892, 1_084]);
        assert_eq!(spec.test.counts, [74_355, 6_618, 8_039]);
        assert_eq!(spec.training2.total(), 12_000);
        assert_eq!(spec.test.total(), 89_012);
    }
}
