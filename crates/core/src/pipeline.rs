//! End-to-end pipelines: the PC (floating-point) reference and the WBSN
//! (integer) deployment, trained from the same dataset.
//!
//! The framework of Figure 2 has two halves. The *training* half runs on a
//! PC: projection optimisation plus membership-function training in floating
//! point. The *test* half runs either on the PC (the `*-PC` rows of the
//! tables) or on the WBSN after the resource-constrained optimisation phase
//! (`*-WBSN` rows): 4× downsampling, 2-bit packed projection, linearised
//! integer membership functions, shift-normalised fuzzification.
//!
//! [`TrainedSystem`] trains both halves from one [`ExperimentConfig`] so that
//! every experiment compares them on exactly the same data.

use hbc_ecg::beat::Beat;
use hbc_ecg::dataset::Dataset;
use hbc_embedded::int_classifier::AlphaQ16;
use hbc_embedded::{IntegerNfc, MembershipKind, Quantizer};
use hbc_nfc::metrics::EvaluationReport;
use hbc_nfc::{FittedPipeline, TwoStepTrainer};
use hbc_rp::PackedProjection;

use crate::config::ExperimentConfig;
use crate::engine::{Engine, WbsnEvaluator};
use crate::Result;

/// The integer (WBSN) deployment of a trained classifier.
#[derive(Debug, Clone)]
pub struct WbsnPipeline {
    /// 2-bit packed projection operating on the downsampled window.
    pub projection: PackedProjection,
    /// Integer classifier (linearised or triangular membership functions).
    pub classifier: IntegerNfc,
    /// Calibrated defuzzification coefficient.
    pub alpha: AlphaQ16,
    /// Downsampling factor applied to acquisition-rate beat windows.
    pub downsample: usize,
    /// ADC front-end model used for quantisation.
    pub adc: hbc_embedded::AdcModel,
}

/// Reusable buffers for the WBSN per-beat hot path (downsampled window,
/// quantised codes, projected coefficients) — the same working set the
/// firmware uses, re-exported from [`hbc_embedded`].
///
/// Classifying a beat through [`WbsnPipeline::classify_with_alpha`] allocates
/// three vectors; batch loops instead hold one `WbsnScratch` and call
/// [`WbsnPipeline::classify_with_scratch`], so steady-state evaluation
/// performs no per-beat allocation. A scratch belongs to one worker at a
/// time — the engine creates one per batch.
pub type WbsnScratch = hbc_embedded::BeatScratch;

/// Conditioning-chain scratch (morphology wedge + stage buffers + wavelet
/// planes), re-exported from [`hbc_dsp`] next to [`WbsnScratch`] so
/// record-level drivers can hold both working sets of the deployment: the
/// front-end runs through a `FrontendScratch`
/// (`WbsnFirmware::process_record_with`, the engine's `process_records`
/// pool, the `StreamHub` calibration) and the per-beat stages through a
/// `WbsnScratch`. Same ownership rule: one scratch per worker at a time.
pub use hbc_dsp::FrontendScratch;

impl WbsnPipeline {
    /// Classifies one acquisition-rate beat window exactly as the node would.
    ///
    /// # Errors
    ///
    /// Returns an error when the window length does not match the pipeline.
    pub fn classify(&self, beat: &Beat) -> Result<hbc_ecg::BeatClass> {
        self.classify_with_alpha(beat, self.alpha)
    }

    /// Classifies one beat with an explicit α_test (used for the Figure 5
    /// sweeps).
    ///
    /// # Errors
    ///
    /// Returns an error when the window length does not match the pipeline.
    pub fn classify_with_alpha(&self, beat: &Beat, alpha: AlphaQ16) -> Result<hbc_ecg::BeatClass> {
        self.classify_with_scratch(beat, alpha, &mut WbsnScratch::default())
    }

    /// [`Self::classify_with_alpha`] against caller-owned scratch buffers:
    /// the per-beat intermediates live in `scratch` and are reused across
    /// calls, so batch loops perform no per-beat allocation.
    ///
    /// # Errors
    ///
    /// Returns an error when the window length does not match the pipeline.
    ///
    /// # Panics
    ///
    /// Panics when the pipeline's downsampling factor is zero.
    pub fn classify_with_scratch(
        &self,
        beat: &Beat,
        alpha: AlphaQ16,
        scratch: &mut WbsnScratch,
    ) -> Result<hbc_ecg::BeatClass> {
        scratch
            .classify(
                &beat.samples,
                self.downsample,
                &self.adc,
                &self.projection,
                &self.classifier,
                alpha,
            )
            .map_err(crate::CoreError::Embedded)
    }

    /// Evaluates the pipeline over a set of acquisition-rate beats, reusing
    /// one scratch across the whole set.
    ///
    /// # Errors
    ///
    /// Returns an error when a beat window does not match the pipeline.
    pub fn evaluate(&self, beats: &[Beat], alpha: AlphaQ16) -> Result<EvaluationReport> {
        let mut scratch = WbsnScratch::default();
        let mut report = EvaluationReport::new();
        for beat in beats {
            if beat.class.index().is_none() {
                continue;
            }
            let predicted = self.classify_with_scratch(beat, alpha, &mut scratch)?;
            report.record(beat.class, predicted);
        }
        Ok(report)
    }

    /// [`Self::evaluate`] spread over `engine`'s workers; the report is
    /// bit-identical to the sequential pass.
    ///
    /// # Errors
    ///
    /// Returns an error when a beat window does not match the pipeline.
    pub fn evaluate_with(
        &self,
        engine: &Engine,
        beats: &[Beat],
        alpha: AlphaQ16,
    ) -> Result<EvaluationReport> {
        engine.evaluate_beats(
            &WbsnEvaluator {
                pipeline: self,
                alpha,
            },
            beats,
        )
    }

    /// Calibrates α_test so the ARR measured on `beats` reaches
    /// `target_arr`, returning the calibrated α and its report.
    ///
    /// Every probe of the binary search scans the full beat set, so the
    /// probes run on all cores by default.
    ///
    /// # Errors
    ///
    /// Returns an error when a beat window does not match the pipeline.
    pub fn calibrate_alpha(
        &self,
        beats: &[Beat],
        target_arr: f64,
    ) -> Result<(AlphaQ16, EvaluationReport)> {
        self.calibrate_alpha_with(&Engine::default(), beats, target_arr)
    }

    /// [`Self::calibrate_alpha`] with an explicit evaluation engine.
    ///
    /// # Errors
    ///
    /// Returns an error when a beat window does not match the pipeline.
    pub fn calibrate_alpha_with(
        &self,
        engine: &Engine,
        beats: &[Beat],
        target_arr: f64,
    ) -> Result<(AlphaQ16, EvaluationReport)> {
        // Binary search over the Q16 grid (ARR is non-decreasing in α).
        let mut lo = 0u32;
        let mut hi = 65_536u32;
        let eval = |alpha: u32| self.evaluate_with(engine, beats, AlphaQ16(alpha));
        let hi_report = eval(hi)?;
        let mut best = (AlphaQ16(hi), hi_report);
        let lo_report = eval(lo)?;
        if lo_report.arr() >= target_arr {
            return Ok((AlphaQ16(lo), lo_report));
        }
        while hi - lo > 64 {
            let mid = lo + (hi - lo) / 2;
            let report = eval(mid)?;
            if report.arr() >= target_arr {
                best = (AlphaQ16(mid), report);
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(best)
    }
}

/// Both halves of the framework trained on the same dataset.
#[derive(Debug, Clone)]
pub struct TrainedSystem {
    /// The dataset used for training and evaluation.
    pub dataset: Dataset,
    /// The WBSN-rate dataset (every beat window downsampled), used to train
    /// the embedded variant.
    pub dataset_downsampled: Dataset,
    /// The floating-point PC pipeline (full-rate windows, Gaussian
    /// membership functions).
    pub pc: FittedPipeline,
    /// The floating-point pipeline trained on downsampled windows, from which
    /// the integer deployments are derived.
    pub pc_downsampled: FittedPipeline,
    /// The integer WBSN deployment with linearised membership functions.
    pub wbsn: WbsnPipeline,
    /// The configuration the system was trained with.
    pub config: ExperimentConfig,
}

impl TrainedSystem {
    /// Generates the dataset and trains every pipeline variant.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid or training fails.
    pub fn train(config: &ExperimentConfig) -> Result<Self> {
        Self::train_with_coefficients(config, config.coefficients)
    }

    /// Same as [`Self::train`] but with an explicit coefficient count
    /// (used by the Table II sweep).
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid or training fails.
    pub fn train_with_coefficients(config: &ExperimentConfig, coefficients: usize) -> Result<Self> {
        config.validate()?;
        let dataset = Dataset::synthetic(config.dataset, config.seed);
        let dataset_downsampled = downsample_dataset(&dataset, config.downsample);

        let pc = fit(config, &dataset, coefficients)?;
        let pc_downsampled = fit(config, &dataset_downsampled, coefficients)?;
        let wbsn = build_wbsn(config, &pc_downsampled, MembershipKind::Linearized)?;

        Ok(TrainedSystem {
            dataset,
            dataset_downsampled,
            pc,
            pc_downsampled,
            wbsn,
            config: *config,
        })
    }

    /// Builds an alternative WBSN deployment with a different membership
    /// family (used by the Figure 5 comparison).
    ///
    /// # Errors
    ///
    /// Returns an error when quantisation fails.
    pub fn wbsn_with_kind(&self, kind: MembershipKind) -> Result<WbsnPipeline> {
        build_wbsn(&self.config, &self.pc_downsampled, kind)
    }

    /// Evaluates the PC pipeline on the test split at its calibrated
    /// α_train, using all cores.
    ///
    /// # Errors
    ///
    /// Returns an error when a beat window does not match the projection.
    pub fn evaluate_pc_on_test(&self) -> Result<EvaluationReport> {
        self.evaluate_pc_on_test_with(&Engine::default())
    }

    /// [`Self::evaluate_pc_on_test`] with an explicit evaluation engine.
    ///
    /// # Errors
    ///
    /// Returns an error when a beat window does not match the projection.
    pub fn evaluate_pc_on_test_with(&self, engine: &Engine) -> Result<EvaluationReport> {
        engine.evaluate_beats(
            &crate::engine::PcEvaluator {
                pipeline: &self.pc,
                alpha: self.pc.alpha_train,
            },
            &self.dataset.test,
        )
    }

    /// Evaluates the WBSN pipeline on the (acquisition-rate) test split at
    /// its calibrated α, using all cores.
    ///
    /// # Errors
    ///
    /// Returns an error when a beat window does not match the projection.
    pub fn evaluate_wbsn_on_test(&self) -> Result<EvaluationReport> {
        self.evaluate_wbsn_on_test_with(&Engine::default())
    }

    /// [`Self::evaluate_wbsn_on_test`] with an explicit evaluation engine.
    ///
    /// # Errors
    ///
    /// Returns an error when a beat window does not match the projection.
    pub fn evaluate_wbsn_on_test_with(&self, engine: &Engine) -> Result<EvaluationReport> {
        self.wbsn
            .evaluate_with(engine, &self.dataset.test, self.wbsn.alpha)
    }
}

/// Trains a floating-point pipeline, using the GA when the configuration
/// enables it.
fn fit(
    config: &ExperimentConfig,
    dataset: &Dataset,
    coefficients: usize,
) -> Result<FittedPipeline> {
    let trainer =
        TwoStepTrainer::new(config.two_step(coefficients)).map_err(crate::CoreError::Nfc)?;
    let fitted = if config.genetic.is_some() {
        trainer.fit(dataset)
    } else {
        trainer.fit_single(dataset, config.seed.wrapping_add(coefficients as u64))
    }
    .map_err(crate::CoreError::Nfc)?;
    Ok(fitted)
}

/// Derives the integer WBSN deployment from a pipeline trained on
/// downsampled windows.
fn build_wbsn(
    config: &ExperimentConfig,
    pc_downsampled: &FittedPipeline,
    kind: MembershipKind,
) -> Result<WbsnPipeline> {
    let quantizer = Quantizer::new().with_kind(kind);
    let classifier = quantizer.quantize_classifier(&pc_downsampled.classifier)?;
    let projection = PackedProjection::from_matrix(&pc_downsampled.projection);
    let alpha = AlphaQ16::from_f64(pc_downsampled.alpha_train)?;
    Ok(WbsnPipeline {
        projection,
        classifier,
        alpha,
        downsample: config.downsample,
        adc: quantizer.adc,
    })
}

/// Downsamples every beat window of a dataset (used to train the WBSN-rate
/// classifier).
pub fn downsample_dataset(dataset: &Dataset, factor: usize) -> Dataset {
    let map = |beats: &[Beat]| beats.iter().map(|b| b.downsample(factor)).collect();
    Dataset {
        training1: map(&dataset.training1),
        training2: map(&dataset.training2),
        test: map(&dataset.test),
        spec: dataset.spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_system() -> TrainedSystem {
        TrainedSystem::train(&ExperimentConfig::quick()).expect("training succeeds")
    }

    #[test]
    fn training_produces_consistent_dimensions() {
        let system = quick_system();
        assert_eq!(system.pc.projection.cols(), 200);
        assert_eq!(system.pc_downsampled.projection.cols(), 50);
        assert_eq!(system.wbsn.projection.cols(), 50);
        assert_eq!(system.wbsn.classifier.num_coefficients(), 8);
        assert_eq!(system.dataset_downsampled.test[0].samples.len(), 50);
    }

    #[test]
    fn pc_pipeline_meets_the_calibration_target_on_training2() {
        let system = quick_system();
        let report = system
            .pc
            .evaluate(&system.dataset.training2, system.pc.alpha_train)
            .expect("evaluate");
        assert!(report.arr() >= 0.97, "ARR {}", report.arr());
    }

    #[test]
    fn pc_and_wbsn_both_generalize_to_the_test_split() {
        let system = quick_system();
        let pc = system.evaluate_pc_on_test().expect("pc evaluation");
        let wbsn = system.evaluate_wbsn_on_test().expect("wbsn evaluation");
        assert!(pc.arr() > 0.85, "PC ARR {}", pc.arr());
        assert!(pc.ndr() > 0.6, "PC NDR {}", pc.ndr());
        assert!(wbsn.arr() > 0.80, "WBSN ARR {}", wbsn.arr());
        assert!(wbsn.ndr() > 0.5, "WBSN NDR {}", wbsn.ndr());
        // The paper's observation: the embedded version stays within a few
        // points of the PC version.
        assert!(
            (pc.ndr() - wbsn.ndr()).abs() < 0.25,
            "PC NDR {} and WBSN NDR {} diverged",
            pc.ndr(),
            wbsn.ndr()
        );
    }

    #[test]
    fn wbsn_alpha_calibration_reaches_the_target() {
        let system = quick_system();
        let (alpha, report) = system
            .wbsn
            .calibrate_alpha(&system.dataset.training2, 0.97)
            .expect("calibrate");
        assert!(report.arr() >= 0.97);
        // α = 1 always reaches the target, so the calibrated value is valid.
        assert!(alpha.0 <= 65_536);
    }

    #[test]
    fn triangular_variant_can_be_derived() {
        let system = quick_system();
        let tri = system
            .wbsn_with_kind(MembershipKind::Triangular)
            .expect("triangular variant");
        assert_eq!(tri.classifier.kind(), MembershipKind::Triangular);
        let report = tri
            .evaluate(&system.dataset.test, tri.alpha)
            .expect("evaluate");
        assert!(report.total() > 0);
    }

    #[test]
    fn downsampled_dataset_preserves_composition() {
        let system = quick_system();
        for split in [hbc_ecg::Split::Training1, hbc_ecg::Split::Test] {
            assert_eq!(
                system.dataset.class_counts(split),
                system.dataset_downsampled.class_counts(split)
            );
        }
    }
}
