//! Append-only segment log for the ingestion gateway.
//!
//! Every `Samples` chunk the gateway accepts is appended here *before* it is
//! fed to the `StreamHub`, so a process crash loses nothing that was
//! acknowledged on the wire. The log is the durability substrate behind three
//! gateway features: crash-safe restart (rebuild detached-session state and
//! let nodes re-attach via the resume protocol), deterministic replay
//! (re-score logged streams through any fitted pipeline, bit-identical to
//! live ingestion thanks to the hub's chunk invariance), and post-hoc audit.
//!
//! # On-disk format
//!
//! The log is a directory of fixed-capacity segment files named
//! `<index>.wal` with a zero-padded 16-digit decimal index
//! (`0000000000000000.wal`, `0000000000000001.wal`, …). Segments are written
//! strictly in index order and never modified once rotated away from; only
//! the highest-index segment is ever open for append.
//!
//! Each record reuses the wire protocol's framing conventions
//! (`hbc_net::proto`): a little-endian `u32` length prefix counting the tag
//! byte plus the body, the tag byte, the body, and a CRC-32 trailer (IEEE
//! 802.3 reflected polynomial — the ZIP/PNG CRC) computed over tag + body.
//! All integers are little-endian. The crate deliberately re-implements the
//! (tiny) CRC rather than depending on `hbc-net`: the log is a leaf crate so
//! the networking layer can depend on *it*.
//!
//! | tag | record | body |
//! |-----|--------|------|
//! | `0x01` | [`WalRecord::SessionOpen`] | token `u64`, wire id `u32`, patient id `u32`, calibration length `u32`, sampling rate `u32` (mHz) |
//! | `0x02` | [`WalRecord::Samples`] | token `u64`, seq `u32`, count `u32`, count × ADC code `i16` |
//! | `0x03` | [`WalRecord::SessionClose`] | token `u64` |
//!
//! Samples are logged as the raw 12-bit ADC codes from the wire, not as
//! floating-point millivolts: codes are the canonical representation
//! (dequantisation is deterministic), and they halve the log volume.
//!
//! # Durability policy
//!
//! [`SyncPolicy`] controls when `fsync` runs: [`SyncPolicy::Always`] after
//! every append, [`SyncPolicy::OnRotation`] (the default) when a segment
//! fills and is sealed, [`SyncPolicy::Never`] for benchmarks and tests.
//! Directory metadata is synced after every segment creation so a crash
//! cannot orphan a sealed segment.
//!
//! # Recovery
//!
//! [`Wal::open`] scans the segments in index order and validates every
//! record. The scan *never panics* on corrupt input — a torn tail (partial
//! write from a crash), a bit flip, or an impossible length prefix all stop
//! the scan at the last valid record: the active segment is truncated back
//! to the end of the valid prefix and any later segments (which can only
//! hold data written *after* the corruption point) are deleted. What
//! recovery returns is therefore always a valid prefix of what was appended,
//! and the re-opened log continues appending exactly at that point.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use hbc_obs::{Counter, Histogram};

/// Upper bound on `len` (tag + body) of a single record. Mirrors the wire
/// protocol's `MAX_FRAME_LEN`; anything larger in a length prefix is treated
/// as corruption by the recovery scan.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Default capacity of one segment file (8 MiB). A record that would
/// overflow the active segment triggers rotation, so segments may exceed
/// this by at most one record.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 << 20;

const TAG_SESSION_OPEN: u8 = 0x01;
const TAG_SAMPLES: u8 = 0x02;
const TAG_SESSION_CLOSE: u8 = 0x03;

const SEGMENT_EXT: &str = "wal";

// -------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — same table construction as
// `hbc_net::proto`, re-implemented so `hbc-wal` stays a leaf crate.
// -------------------------------------------------------------------------

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes` — the record
/// trailer. Identical to `hbc_net::proto::crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// -------------------------------------------------------------------------
// Records
// -------------------------------------------------------------------------

/// One durable log record. The session key is the resume token (`u64`): it
/// is unique across the gateway's whole lifetime, unlike wire session ids,
/// which restart from 1 on every process start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A session was opened: identity and calibration contract.
    SessionOpen {
        /// Resume token — the durable session key.
        token: u64,
        /// Wire session id assigned by the gateway that logged the record.
        wire_id: u32,
        /// Patient identifier declared by the node.
        patient_id: u32,
        /// Number of leading samples consumed by threshold calibration.
        calib_len: u32,
        /// Sampling rate in millihertz, as declared on the wire.
        fs_millihertz: u32,
    },
    /// One accepted `Samples` chunk, in wire ADC codes.
    Samples {
        /// Resume token of the owning session.
        token: u64,
        /// Wire sequence number of the chunk.
        seq: u32,
        /// Raw 12-bit ADC codes exactly as accepted from the wire.
        codes: Vec<i16>,
    },
    /// The session was closed (report delivered or retention expired);
    /// recovery skips sessions that carry one of these.
    SessionClose {
        /// Resume token of the closed session.
        token: u64,
    },
}

impl WalRecord {
    /// Resume token of the session this record belongs to.
    pub fn token(&self) -> u64 {
        match *self {
            WalRecord::SessionOpen { token, .. }
            | WalRecord::Samples { token, .. }
            | WalRecord::SessionClose { token } => token,
        }
    }

    /// Appends the record's serialisation (length prefix, tag, body, CRC
    /// trailer) to `out` and returns the number of bytes written.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        out.extend_from_slice(&[0; 4]); // length back-patched below
        let tag_at = out.len();
        match *self {
            WalRecord::SessionOpen {
                token,
                wire_id,
                patient_id,
                calib_len,
                fs_millihertz,
            } => {
                out.push(TAG_SESSION_OPEN);
                out.extend_from_slice(&token.to_le_bytes());
                out.extend_from_slice(&wire_id.to_le_bytes());
                out.extend_from_slice(&patient_id.to_le_bytes());
                out.extend_from_slice(&calib_len.to_le_bytes());
                out.extend_from_slice(&fs_millihertz.to_le_bytes());
            }
            WalRecord::Samples {
                token,
                seq,
                ref codes,
            } => {
                out.push(TAG_SAMPLES);
                out.extend_from_slice(&token.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(codes.len() as u32).to_le_bytes());
                for &c in codes {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            WalRecord::SessionClose { token } => {
                out.push(TAG_SESSION_CLOSE);
                out.extend_from_slice(&token.to_le_bytes());
            }
        }
        let len = out.len() - tag_at;
        debug_assert!(len <= MAX_RECORD_LEN);
        out[start..start + 4].copy_from_slice(&(len as u32).to_le_bytes());
        let crc = crc32(&out[tag_at..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out.len() - start
    }

    /// Serialises the record into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Bounds-checked little-endian reader over a record body.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Some(s)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn i16(&mut self) -> Option<i16> {
        self.take(2)
            .map(|s| i16::from_le_bytes(s.try_into().unwrap()))
    }

    fn exhausted(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// Decodes one record body (`tag` byte already split off). `None` means the
/// body is malformed — recovery treats that exactly like a CRC failure.
fn decode_body(tag: u8, body: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor::new(body);
    let rec = match tag {
        TAG_SESSION_OPEN => WalRecord::SessionOpen {
            token: c.u64()?,
            wire_id: c.u32()?,
            patient_id: c.u32()?,
            calib_len: c.u32()?,
            fs_millihertz: c.u32()?,
        },
        TAG_SAMPLES => {
            let token = c.u64()?;
            let seq = c.u32()?;
            let count = c.u32()? as usize;
            // Reject counts the remaining body cannot hold before
            // allocating: a bit-flipped count must not OOM the scan.
            if count.checked_mul(2)? != body.len().checked_sub(c.at)? {
                return None;
            }
            let mut codes = Vec::with_capacity(count);
            for _ in 0..count {
                codes.push(c.i16()?);
            }
            WalRecord::Samples { token, seq, codes }
        }
        TAG_SESSION_CLOSE => WalRecord::SessionClose { token: c.u64()? },
        _ => return None,
    };
    if c.exhausted() {
        Some(rec)
    } else {
        None
    }
}

/// Decodes the record starting at `buf[at..]`. Returns the record and the
/// total encoded length, or `None` if the bytes at `at` are not a complete
/// valid record (short read, bad length, bad CRC, malformed body).
fn decode_at(buf: &[u8], at: usize) -> Option<(WalRecord, usize)> {
    let len_bytes = buf.get(at..at + 4)?;
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    if len == 0 || len > MAX_RECORD_LEN {
        return None;
    }
    let framed = buf.get(at + 4..at + 4 + len + 4)?;
    let (payload, crc_bytes) = framed.split_at(len);
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(payload) != crc {
        return None;
    }
    let rec = decode_body(payload[0], &payload[1..])?;
    Some((rec, 4 + len + 4))
}

// -------------------------------------------------------------------------
// Configuration
// -------------------------------------------------------------------------

/// When the log issues `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never fsync — throughput benchmarks and tests that only need the
    /// crash model of a clean process exit.
    Never,
    /// Fsync when a full segment is sealed (and on [`Wal::sync`]). Bounds
    /// loss after an OS crash to the active segment; a *process* crash
    /// loses nothing since the data is already in the page cache.
    #[default]
    OnRotation,
    /// Fsync after every append.
    Always,
}

/// Log configuration: directory, segment capacity, sync policy.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files; created if missing.
    pub dir: PathBuf,
    /// Capacity at which the active segment is sealed and a new one opened.
    pub segment_bytes: u64,
    /// `fsync` policy.
    pub sync: SyncPolicy,
}

impl WalConfig {
    /// Default configuration rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            sync: SyncPolicy::default(),
        }
    }

    /// Overrides the segment capacity (clamped to ≥ 1 so rotation always
    /// makes progress).
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// Overrides the sync policy.
    pub fn sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }
}

// -------------------------------------------------------------------------
// Recovery
// -------------------------------------------------------------------------

/// What [`Wal::open`] found on disk: the valid record prefix plus scan
/// statistics.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every valid record, in append order across all segments.
    pub records: Vec<WalRecord>,
    /// Number of segment files scanned.
    pub segments_scanned: usize,
    /// Bytes discarded from the corruption point onward (torn tail plus any
    /// later segments).
    pub bytes_truncated: u64,
    /// Whether the scan hit a torn tail / corrupt record and truncated.
    pub truncated: bool,
}

/// Errors surfaced by the log. Corrupt data is *not* an error — the
/// recovery scan absorbs it — so this is I/O plus configuration misuse only.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A single record larger than [`MAX_RECORD_LEN`] was submitted.
    RecordTooLarge(usize),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::RecordTooLarge(n) => {
                write!(f, "wal record of {n} bytes exceeds {MAX_RECORD_LEN}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::RecordTooLarge(_) => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Crate result type.
pub type Result<T> = std::result::Result<T, WalError>;

// -------------------------------------------------------------------------
// The log
// -------------------------------------------------------------------------

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{index:016}.{SEGMENT_EXT}"))
}

/// Lists the segment indices present in `dir`, sorted ascending. Files that
/// do not match the `<16-digit index>.wal` pattern are ignored.
fn list_segments(dir: &Path) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_suffix(&format!(".{SEGMENT_EXT}")) else {
            continue;
        };
        if stem.len() == 16 {
            if let Ok(index) = stem.parse::<u64>() {
                out.push(index);
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

fn sync_dir(dir: &Path) -> Result<()> {
    // Windows cannot open directories as files; POSIX needs the directory
    // fsync so segment creation survives an OS crash.
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Telemetry for one [`Wal`]: append/fsync call counts, appended byte
/// volume, and log2-bucketed latency histograms for both syscalls. Updated
/// inline on the append path (two clock reads per call); read via
/// [`Wal::metrics`].
#[derive(Debug, Clone, Default)]
pub struct WalMetrics {
    /// Successful [`Wal::append`] calls.
    pub appends: Counter,
    /// Encoded bytes appended (framing included).
    pub appended_bytes: Counter,
    /// Explicit [`Wal::sync`] calls (policy-driven fsyncs inside `append`
    /// are timed as part of the append histogram instead).
    pub syncs: Counter,
    /// Wall-clock nanoseconds per append (encode + write + policy fsync).
    pub append_nanos: Histogram,
    /// Wall-clock nanoseconds per explicit sync.
    pub sync_nanos: Histogram,
}

/// Append-only segment log. See the crate docs for the format and the
/// durability/recovery contracts.
#[derive(Debug)]
pub struct Wal {
    config: WalConfig,
    active: File,
    active_index: u64,
    active_len: u64,
    total_bytes: u64,
    scratch: Vec<u8>,
    metrics: WalMetrics,
}

impl Wal {
    /// Opens (creating if necessary) the log at `config.dir`, runs the
    /// recovery scan, truncates any torn tail, and positions the log to
    /// append immediately after the last valid record.
    ///
    /// # Errors
    ///
    /// Only on filesystem failure — corrupt log *content* is absorbed by
    /// the scan and reported through [`Recovery`], never an error and never
    /// a panic.
    pub fn open(config: WalConfig) -> Result<(Self, Recovery)> {
        fs::create_dir_all(&config.dir)?;
        let segments = list_segments(&config.dir)?;
        let mut recovery = Recovery::default();
        let mut valid_end: u64 = 0; // valid bytes in the last scanned segment
        let mut scan_stop: Option<usize> = None; // position in `segments` of corruption

        for (pos, &index) in segments.iter().enumerate() {
            recovery.segments_scanned += 1;
            let path = segment_path(&config.dir, index);
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let mut at = 0usize;
            while at < buf.len() {
                match decode_at(&buf, at) {
                    Some((rec, n)) => {
                        recovery.records.push(rec);
                        at += n;
                    }
                    None => {
                        // Torn tail or corruption: everything from here on
                        // (including all later segments) is untrusted.
                        recovery.truncated = true;
                        recovery.bytes_truncated += (buf.len() - at) as u64;
                        scan_stop = Some(pos);
                        break;
                    }
                }
            }
            valid_end = at as u64;
            if scan_stop.is_some() {
                break;
            }
        }

        let (active_index, active_len) = match scan_stop {
            Some(pos) => {
                // Truncate the corrupt segment back to its valid prefix and
                // delete every later segment.
                let index = segments[pos];
                let path = segment_path(&config.dir, index);
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid_end)?;
                f.sync_all()?;
                for &later in &segments[pos + 1..] {
                    let path = segment_path(&config.dir, later);
                    recovery.bytes_truncated += fs::metadata(&path)?.len();
                    fs::remove_file(&path)?;
                }
                sync_dir(&config.dir)?;
                (index, valid_end)
            }
            None => match segments.last() {
                Some(&index) => (index, valid_end),
                None => {
                    // Fresh log: create segment 0.
                    let path = segment_path(&config.dir, 0);
                    File::create(&path)?;
                    sync_dir(&config.dir)?;
                    (0, 0)
                }
            },
        };

        let mut active = OpenOptions::new()
            .append(true)
            .open(segment_path(&config.dir, active_index))?;
        active.seek(SeekFrom::End(0))?;
        // Durable footprint carried forward from previous runs: the segment
        // files as they stand after recovery truncation.
        let mut total_bytes = 0u64;
        for &index in &list_segments(&config.dir)? {
            total_bytes += fs::metadata(segment_path(&config.dir, index))?.len();
        }
        let wal = Wal {
            config,
            active,
            active_index,
            active_len,
            total_bytes,
            scratch: Vec::new(),
            metrics: WalMetrics::default(),
        };
        Ok((wal, recovery))
    }

    /// Appends one record, rotating the active segment first if it is full.
    /// Returns the encoded size in bytes (framing included).
    ///
    /// # Errors
    ///
    /// On filesystem failure, or [`WalError::RecordTooLarge`] for a record
    /// whose encoding exceeds [`MAX_RECORD_LEN`].
    pub fn append(&mut self, record: &WalRecord) -> Result<usize> {
        let started = Instant::now();
        self.scratch.clear();
        let n = record.encode_into(&mut self.scratch);
        if n > MAX_RECORD_LEN + 8 {
            return Err(WalError::RecordTooLarge(n));
        }
        if self.active_len > 0 && self.active_len + n as u64 > self.config.segment_bytes {
            self.rotate()?;
        }
        let scratch = std::mem::take(&mut self.scratch);
        let res = self.active.write_all(&scratch);
        self.scratch = scratch;
        res?;
        self.active_len += n as u64;
        if self.config.sync == SyncPolicy::Always {
            self.active.sync_data()?;
        }
        self.total_bytes += n as u64;
        self.metrics.appends.inc();
        self.metrics.appended_bytes.add(n as u64);
        self.metrics
            .append_nanos
            .record(started.elapsed().as_nanos() as u64);
        Ok(n)
    }

    /// Seals the active segment (fsync per policy) and opens the next one.
    fn rotate(&mut self) -> Result<()> {
        if self.config.sync != SyncPolicy::Never {
            self.active.sync_all()?;
        }
        self.active_index += 1;
        let path = segment_path(&self.config.dir, self.active_index);
        self.active = OpenOptions::new().create(true).append(true).open(&path)?;
        self.active_len = 0;
        if self.config.sync != SyncPolicy::Never {
            sync_dir(&self.config.dir)?;
        }
        Ok(())
    }

    /// Forces the active segment to stable storage regardless of policy.
    ///
    /// # Errors
    ///
    /// On filesystem failure.
    pub fn sync(&mut self) -> Result<()> {
        let started = Instant::now();
        self.active.sync_data()?;
        self.metrics.syncs.inc();
        self.metrics
            .sync_nanos
            .record(started.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Index of the segment currently open for append.
    pub fn active_segment(&self) -> u64 {
        self.active_index
    }

    /// Bytes written to the active segment so far.
    pub fn active_len(&self) -> u64 {
        self.active_len
    }

    /// Total durable footprint of the log in bytes: every segment on disk as
    /// of open (post-recovery) plus everything appended since.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Telemetry accumulated by this handle since open.
    pub fn metrics(&self) -> &WalMetrics {
        &self.metrics
    }

    /// The configuration the log was opened with.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }
}

/// Scans the log at `dir` read-only (no truncation, no segment creation) and
/// returns the valid record prefix. Used by the replay driver against a log
/// directory that may still be owned by a live gateway.
///
/// # Errors
///
/// Only on filesystem failure; corrupt content stops the scan cleanly.
pub fn scan(dir: impl AsRef<Path>) -> Result<Recovery> {
    let dir = dir.as_ref();
    let mut recovery = Recovery::default();
    for index in list_segments(dir)? {
        recovery.segments_scanned += 1;
        let mut buf = Vec::new();
        File::open(segment_path(dir, index))?.read_to_end(&mut buf)?;
        let mut at = 0usize;
        while at < buf.len() {
            match decode_at(&buf, at) {
                Some((rec, n)) => {
                    recovery.records.push(rec);
                    at += n;
                }
                None => {
                    recovery.truncated = true;
                    recovery.bytes_truncated += (buf.len() - at) as u64;
                    return Ok(recovery);
                }
            }
        }
    }
    Ok(recovery)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "hbc-wal-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::SessionOpen {
                token: 0xDEAD_BEEF_F00D_CAFE,
                wire_id: 1,
                patient_id: 100,
                calib_len: 7200,
                fs_millihertz: 360_000,
            },
            WalRecord::Samples {
                token: 0xDEAD_BEEF_F00D_CAFE,
                seq: 0,
                codes: (-40..40).map(|i| i * 13).collect(),
            },
            WalRecord::Samples {
                token: 0xDEAD_BEEF_F00D_CAFE,
                seq: 1,
                codes: vec![i16::MIN, -1, 0, 1, i16::MAX],
            },
            WalRecord::SessionClose {
                token: 0xDEAD_BEEF_F00D_CAFE,
            },
        ]
    }

    #[test]
    fn round_trip_single_segment() {
        let tmp = TempDir::new("roundtrip");
        let records = sample_records();
        {
            let (mut wal, rec) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
            assert!(rec.records.is_empty());
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_, rec) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
        assert_eq!(rec.records, records);
        assert!(!rec.truncated);
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let tmp = TempDir::new("rotate");
        let records = sample_records();
        {
            let cfg = WalConfig::new(&tmp.0).segment_bytes(32);
            let (mut wal, _) = Wal::open(cfg).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
            assert!(wal.active_segment() >= 2, "tiny segments must rotate");
        }
        let (_, rec) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
        assert_eq!(rec.records, records);
        assert!(rec.segments_scanned >= 3);
    }

    #[test]
    fn torn_tail_truncates_to_valid_prefix() {
        let tmp = TempDir::new("torn");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        // Chop bytes off the tail: the last record becomes torn.
        let path = segment_path(&tmp.0, 0);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (mut wal, rec) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
        assert!(rec.truncated);
        assert_eq!(rec.records, records[..records.len() - 1]);
        // The log must keep working after truncation.
        wal.append(&records[records.len() - 1]).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
        assert_eq!(rec.records, records);
    }

    #[test]
    fn corruption_drops_later_segments() {
        let tmp = TempDir::new("midflip");
        let records = sample_records();
        {
            let cfg = WalConfig::new(&tmp.0).segment_bytes(32);
            let (mut wal, _) = Wal::open(cfg).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        // Flip a byte in the middle of segment 0's first record body.
        let path = segment_path(&tmp.0, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[6] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (_, rec) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
        assert!(rec.truncated);
        assert!(rec.records.is_empty());
        assert!(rec.bytes_truncated > 0);
        // Later segments must be gone.
        assert_eq!(list_segments(&tmp.0).unwrap(), vec![0]);
    }

    #[test]
    fn read_only_scan_matches_open() {
        let tmp = TempDir::new("scan");
        let records = sample_records();
        let (mut wal, _) = Wal::open(WalConfig::new(&tmp.0).segment_bytes(64)).unwrap();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        // Scan while the writer is still live.
        let rec = scan(&tmp.0).unwrap();
        assert_eq!(rec.records, records);
    }

    #[test]
    fn zero_and_huge_length_prefixes_are_corruption() {
        let tmp = TempDir::new("lenbomb");
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
            wal.append(&WalRecord::SessionClose { token: 9 }).unwrap();
        }
        let path = segment_path(&tmp.0, 0);
        let good = fs::read(&path).unwrap();
        for bad_len in [0u32, (MAX_RECORD_LEN as u32) + 1, u32::MAX] {
            let mut bytes = good.clone();
            bytes.extend_from_slice(&bad_len.to_le_bytes());
            bytes.extend_from_slice(&[0xAB; 7]);
            fs::write(&path, &bytes).unwrap();
            let (_, rec) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
            assert!(rec.truncated);
            assert_eq!(rec.records, vec![WalRecord::SessionClose { token: 9 }]);
            // open() restored the file to the valid prefix.
            assert_eq!(fs::read(&path).unwrap(), good);
        }
    }

    #[test]
    fn samples_count_overflow_is_rejected() {
        // A Samples body whose count field disagrees with the body length
        // must decode to None, not allocate count elements.
        let rec = WalRecord::Samples {
            token: 1,
            seq: 0,
            codes: vec![1, 2, 3],
        };
        let mut bytes = rec.encode();
        // Patch the count (body offset: 4 len + 1 tag + 8 token + 4 seq).
        bytes[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
        // Fix the CRC so only the count is inconsistent.
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let crc = crc32(&bytes[4..4 + len]);
        bytes[4 + len..4 + len + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(decode_at(&bytes, 0).is_none());
    }
}
