//! Property-based recovery guarantees for the segment log:
//!
//! * write → reopen round-trips exactly, for any segment capacity;
//! * truncating the log at **any** byte offset (torn tail from a crash)
//!   recovers a valid prefix of the written records without panicking;
//! * flipping **any** bit recovers a valid prefix without panicking;
//! * recovery is idempotent: a second open sees a clean log, and the log
//!   stays appendable at the recovered position.

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

use hbc_wal::{scan, Wal, WalConfig, WalRecord};
use proptest::prelude::*;

/// SplitMix64 step, the workspace's stock deterministic generator.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically builds one of every record kind from a seed.
fn record_from(state: &mut u64) -> WalRecord {
    match next(state) % 4 {
        0 => WalRecord::SessionOpen {
            token: next(state),
            wire_id: next(state) as u32,
            patient_id: next(state) as u32,
            calib_len: next(state) as u32,
            fs_millihertz: next(state) as u32,
        },
        1 => WalRecord::SessionClose { token: next(state) },
        _ => {
            let n = (next(state) % 200) as usize;
            WalRecord::Samples {
                token: next(state),
                seq: next(state) as u32,
                codes: (0..n).map(|_| next(state) as i16).collect(),
            }
        }
    }
}

/// Fresh scratch directory removed on drop, unique per process + thread so
/// parallel proptest cases cannot collide.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "hbc-wal-prop-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Segment files in index order (the documented `<16-digit index>.wal`
/// naming contract).
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .collect();
    out.sort();
    out
}

/// Writes `records` into a fresh log at `dir` with the given segment size.
fn write_log(dir: &Path, records: &[WalRecord], segment_bytes: u64) {
    let cfg = WalConfig::new(dir).segment_bytes(segment_bytes);
    let (mut wal, rec) = Wal::open(cfg).unwrap();
    assert!(rec.records.is_empty());
    for r in records {
        wal.append(r).unwrap();
    }
    wal.sync().unwrap();
}

/// Asserts `got` is a (possibly complete) prefix of `want`.
fn assert_prefix(got: &[WalRecord], want: &[WalRecord]) {
    assert!(
        got.len() <= want.len() && got == &want[..got.len()],
        "recovered records are not a prefix: got {} records, want {}",
        got.len(),
        want.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_any_segment_size(
        record_seed in any::<u64>(),
        num_records in 1usize..=24,
        segment_bytes in 16u64..=4096,
    ) {
        let tmp = TempDir::new("roundtrip");
        let mut state = record_seed;
        let records: Vec<WalRecord> =
            (0..num_records).map(|_| record_from(&mut state)).collect();
        write_log(&tmp.0, &records, segment_bytes);

        let (_, rec) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
        prop_assert_eq!(&rec.records, &records);
        prop_assert!(!rec.truncated);
    }

    #[test]
    fn truncation_at_any_offset_recovers_a_valid_prefix(
        record_seed in any::<u64>(),
        cut_seed in any::<u64>(),
        num_records in 1usize..=16,
        segment_bytes in 16u64..=1024,
    ) {
        let tmp = TempDir::new("cut");
        let mut state = record_seed;
        let records: Vec<WalRecord> =
            (0..num_records).map(|_| record_from(&mut state)).collect();
        write_log(&tmp.0, &records, segment_bytes);

        // Pick a global byte offset and truncate the log there: shorten the
        // segment that contains it, delete everything after — exactly the
        // disk state a crash mid-write plus lost trailing segments leaves.
        let files = segment_files(&tmp.0);
        let total: u64 = files.iter().map(|p| fs::metadata(p).unwrap().len()).sum();
        let mut cut_state = cut_seed;
        let mut cut = next(&mut cut_state) % (total + 1);
        for path in &files {
            let len = fs::metadata(path).unwrap().len();
            if cut >= len {
                cut -= len;
                continue;
            }
            let f = OpenOptions::new().write(true).open(path).unwrap();
            f.set_len(cut).unwrap();
            cut = 0;
            // Keep later segments on disk: recovery must discard them
            // itself once it hits the torn segment.
        }

        let (mut wal, rec) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
        assert_prefix(&rec.records, &records);
        let recovered = rec.records;

        // The log must remain appendable, and a clean reopen must agree.
        let extra = WalRecord::SessionClose { token: 0x5EED };
        wal.append(&extra).unwrap();
        drop(wal);
        let (_, rec2) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
        prop_assert!(!rec2.truncated, "recovery must be idempotent");
        let mut want = recovered;
        want.push(extra);
        prop_assert_eq!(&rec2.records, &want);
    }

    #[test]
    fn any_bit_flip_recovers_a_valid_prefix(
        record_seed in any::<u64>(),
        flip_seed in any::<u64>(),
        num_records in 1usize..=16,
        segment_bytes in 16u64..=1024,
    ) {
        let tmp = TempDir::new("flip");
        let mut state = record_seed;
        let records: Vec<WalRecord> =
            (0..num_records).map(|_| record_from(&mut state)).collect();
        write_log(&tmp.0, &records, segment_bytes);

        // Flip one bit at a global pseudo-random position.
        let files = segment_files(&tmp.0);
        let total: u64 = files.iter().map(|p| fs::metadata(p).unwrap().len()).sum();
        let mut flip_state = flip_seed;
        let mut bit = next(&mut flip_state) % (total * 8);
        for path in &files {
            let len = fs::metadata(path).unwrap().len() * 8;
            if bit >= len {
                bit -= len;
                continue;
            }
            let mut bytes = fs::read(path).unwrap();
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            fs::write(path, &bytes).unwrap();
            break;
        }

        // A read-only scan and a truncating open must agree on the prefix
        // and neither may panic.
        let scanned = scan(&tmp.0).unwrap();
        assert_prefix(&scanned.records, &records);
        let (_, rec) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
        assert_prefix(&rec.records, &records);
        prop_assert_eq!(&rec.records, &scanned.records);

        let (_, rec2) = Wal::open(WalConfig::new(&tmp.0)).unwrap();
        prop_assert!(!rec2.truncated, "recovery must be idempotent");
        prop_assert_eq!(&rec2.records, &rec.records);
    }
}
