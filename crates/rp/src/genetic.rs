//! Genetic optimisation of the projection matrix.
//!
//! The Johnson–Lindenstrauss guarantee only bounds the *worst-case* distortion
//! of a random projection; empirically some projections separate the beat
//! classes better than others. The paper therefore treats each candidate
//! matrix as a chromosome and runs a genetic algorithm (GA) — population of
//! 20 matrices, 30 generations, crossover and mutation — where the fitness of
//! a matrix is the score of the neuro-fuzzy classifier trained with it and
//! evaluated on *training set 2*.
//!
//! The GA in this module is generic over the fitness function so it can score
//! candidates with the full NFC training loop (as `hbc-nfc::two_step` does) or
//! with any cheaper surrogate in tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::achlioptas::{AchlioptasMatrix, ProjectionEntry};
use crate::{Result, RpError};

/// Configuration of the genetic search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticConfig {
    /// Number of candidate matrices kept in the population (paper: 20).
    pub population: usize,
    /// Number of generations to run (paper: 30).
    pub generations: usize,
    /// Number of top candidates copied unchanged into the next generation.
    pub elitism: usize,
    /// Probability that an offspring entry is replaced by a fresh Achlioptas
    /// draw.
    pub mutation_rate: f64,
    /// Probability that two parents are recombined (otherwise the better
    /// parent is cloned before mutation).
    pub crossover_rate: f64,
    /// Tournament size used for parent selection.
    pub tournament: usize,
    /// RNG seed (the whole search is deterministic given the seed and a
    /// deterministic fitness function).
    pub seed: u64,
}

impl GeneticConfig {
    /// The configuration used in the paper's experiments: 20 chromosomes, 30
    /// generations.
    pub fn paper() -> Self {
        GeneticConfig {
            population: 20,
            generations: 30,
            elitism: 2,
            mutation_rate: 0.01,
            crossover_rate: 0.9,
            tournament: 3,
            seed: 2013,
        }
    }

    /// A reduced configuration for fast tests (population 6, 5 generations).
    pub fn quick() -> Self {
        GeneticConfig {
            population: 6,
            generations: 5,
            elitism: 1,
            mutation_rate: 0.02,
            crossover_rate: 0.9,
            tournament: 2,
            seed: 7,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RpError::Config`] if the population is smaller than 2, the
    /// elitism exceeds the population, the tournament is empty, or a
    /// probability is outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.population < 2 {
            return Err(RpError::Config("population must be at least 2".into()));
        }
        if self.elitism >= self.population {
            return Err(RpError::Config(
                "elitism must be smaller than the population".into(),
            ));
        }
        if self.tournament == 0 || self.tournament > self.population {
            return Err(RpError::Config(
                "tournament size must be in [1, population]".into(),
            ));
        }
        for (name, p) in [
            ("mutation_rate", self.mutation_rate),
            ("crossover_rate", self.crossover_rate),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(RpError::Config(format!("{name} must be within [0, 1]")));
            }
        }
        Ok(())
    }
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig::paper()
    }
}

/// A scored candidate in the population.
#[derive(Debug, Clone)]
struct Individual {
    matrix: AchlioptasMatrix,
    fitness: f64,
}

/// Result of a genetic search.
#[derive(Debug, Clone)]
pub struct GeneticOutcome {
    /// The best projection matrix found.
    pub best: AchlioptasMatrix,
    /// Fitness of the best matrix.
    pub best_fitness: f64,
    /// Best fitness observed at each generation (length = `generations + 1`,
    /// including the initial population).
    pub history: Vec<f64>,
    /// Number of fitness evaluations performed.
    pub evaluations: usize,
}

impl GeneticOutcome {
    /// Improvement of the final best fitness over the initial best fitness.
    pub fn improvement(&self) -> f64 {
        match (self.history.first(), self.history.last()) {
            (Some(first), Some(last)) => last - first,
            _ => 0.0,
        }
    }
}

/// Genetic optimiser over Achlioptas matrices.
#[derive(Debug, Clone)]
pub struct GeneticOptimizer {
    config: GeneticConfig,
    rows: usize,
    cols: usize,
}

impl GeneticOptimizer {
    /// Creates an optimiser for `rows × cols` projection matrices.
    ///
    /// # Errors
    ///
    /// Returns [`RpError::Config`] when the configuration is invalid and
    /// [`RpError::Dimension`] when a dimension is zero.
    pub fn new(rows: usize, cols: usize, config: GeneticConfig) -> Result<Self> {
        config.validate()?;
        if rows == 0 || cols == 0 {
            return Err(RpError::Dimension(
                "projection dimensions must be non-zero".into(),
            ));
        }
        Ok(GeneticOptimizer { config, rows, cols })
    }

    /// The configuration this optimiser runs with.
    pub fn config(&self) -> &GeneticConfig {
        &self.config
    }

    /// Runs the search, calling `fitness` once per candidate evaluation.
    ///
    /// Higher fitness is better (the paper's fitness is the normal-discard
    /// rate achieved at the target abnormal-recognition rate on training
    /// set 2).
    pub fn run<F>(&self, mut fitness: F) -> GeneticOutcome
    where
        F: FnMut(&AchlioptasMatrix) -> f64,
    {
        self.run_batched(|candidates| candidates.iter().map(&mut fitness).collect())
    }

    /// Runs the search, scoring one whole *generation of candidates per
    /// call*: `evaluate` receives every not-yet-scored matrix of a generation
    /// (the full population for generation 0, the non-elite offspring after
    /// that) and returns their fitness values in the same order.
    ///
    /// Because the fitness of a candidate never touches the GA's RNG, pulling
    /// the evaluations out of the breeding loop leaves the RNG stream — and
    /// therefore every generated matrix, selection and mutation — identical
    /// to [`Self::run`]. The batch boundary is what lets callers spread the
    /// evaluations over worker threads (each candidate is scored
    /// independently and results are consumed in population order), so the
    /// parallel search is bit-identical to the sequential one for any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics when `evaluate` returns a different number of scores than
    /// candidates it was given.
    pub fn run_batched<F>(&self, mut evaluate: F) -> GeneticOutcome
    where
        F: FnMut(&[AchlioptasMatrix]) -> Vec<f64>,
    {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut evaluations = 0usize;

        let mut score = |candidates: Vec<AchlioptasMatrix>| -> Vec<Individual> {
            let scores = evaluate(&candidates);
            assert_eq!(
                scores.len(),
                candidates.len(),
                "batch evaluator must score every candidate"
            );
            evaluations += candidates.len();
            candidates
                .into_iter()
                .zip(scores)
                .map(|(matrix, fitness)| Individual { matrix, fitness })
                .collect()
        };

        let seeds: Vec<AchlioptasMatrix> = (0..cfg.population)
            .map(|_| AchlioptasMatrix::generate_with(self.rows, self.cols, &mut rng))
            .collect();
        let mut population = score(seeds);
        sort_by_fitness(&mut population);
        let mut history = vec![population[0].fitness];

        for _gen in 0..cfg.generations {
            let mut offspring: Vec<AchlioptasMatrix> = Vec::new();
            while cfg.elitism + offspring.len() < cfg.population {
                let parent_a = self.tournament_select(&population, &mut rng);
                let parent_b = self.tournament_select(&population, &mut rng);
                let mut child = if rng.gen::<f64>() < cfg.crossover_rate {
                    self.crossover(
                        &population[parent_a].matrix,
                        &population[parent_b].matrix,
                        &mut rng,
                    )
                } else if population[parent_a].fitness >= population[parent_b].fitness {
                    population[parent_a].matrix.clone()
                } else {
                    population[parent_b].matrix.clone()
                };
                self.mutate(&mut child, &mut rng);
                offspring.push(child);
            }
            let mut next: Vec<Individual> = population[..cfg.elitism].to_vec();
            next.extend(score(offspring));
            population = next;
            sort_by_fitness(&mut population);
            history.push(population[0].fitness);
        }

        GeneticOutcome {
            best: population[0].matrix.clone(),
            best_fitness: population[0].fitness,
            history,
            evaluations,
        }
    }

    /// Tournament selection: returns the index of the best of `tournament`
    /// randomly chosen individuals.
    fn tournament_select(&self, population: &[Individual], rng: &mut StdRng) -> usize {
        let mut best = rng.gen_range(0..population.len());
        for _ in 1..self.config.tournament {
            let other = rng.gen_range(0..population.len());
            if population[other].fitness > population[best].fitness {
                best = other;
            }
        }
        best
    }

    /// Row-wise uniform crossover: each row of the child comes from one of
    /// the two parents. Rows are the natural gene boundary because each row
    /// produces one projected coefficient.
    fn crossover(
        &self,
        a: &AchlioptasMatrix,
        b: &AchlioptasMatrix,
        rng: &mut StdRng,
    ) -> AchlioptasMatrix {
        let mut entries = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            let source = if rng.gen::<bool>() { a } else { b };
            entries.extend_from_slice(source.row(r));
        }
        AchlioptasMatrix::from_entries(self.rows, self.cols, entries)
            .expect("crossover preserves dimensions")
    }

    /// Point mutation: each entry is replaced by a fresh Achlioptas draw with
    /// probability `mutation_rate`.
    fn mutate(&self, m: &mut AchlioptasMatrix, rng: &mut StdRng) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if rng.gen::<f64>() < self.config.mutation_rate {
                    *m.entry_mut(r, c) = ProjectionEntry::sample(rng);
                }
            }
        }
    }
}

fn sort_by_fitness(population: &mut [Individual]) {
    population.sort_by(|a, b| {
        b.fitness
            .partial_cmp(&a.fitness)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic fitness: reward matrices whose first row has many +1
    /// entries. The GA should reliably improve it.
    fn plus_count_fitness(m: &AchlioptasMatrix) -> f64 {
        m.row(0)
            .iter()
            .filter(|e| matches!(e, ProjectionEntry::Plus))
            .count() as f64
            / m.cols() as f64
    }

    #[test]
    fn config_validation_catches_bad_parameters() {
        assert!(GeneticConfig::paper().validate().is_ok());
        assert!(GeneticConfig::quick().validate().is_ok());
        let mut c = GeneticConfig::quick();
        c.population = 1;
        assert!(c.validate().is_err());
        let mut c = GeneticConfig::quick();
        c.elitism = c.population;
        assert!(c.validate().is_err());
        let mut c = GeneticConfig::quick();
        c.mutation_rate = 1.5;
        assert!(c.validate().is_err());
        let mut c = GeneticConfig::quick();
        c.tournament = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn paper_config_matches_the_manuscript() {
        let c = GeneticConfig::paper();
        assert_eq!(c.population, 20);
        assert_eq!(c.generations, 30);
    }

    #[test]
    fn optimizer_rejects_zero_dimensions() {
        assert!(GeneticOptimizer::new(0, 10, GeneticConfig::quick()).is_err());
        assert!(GeneticOptimizer::new(8, 0, GeneticConfig::quick()).is_err());
    }

    #[test]
    fn search_improves_a_simple_fitness() {
        let mut cfg = GeneticConfig::quick();
        cfg.generations = 15;
        cfg.population = 10;
        let opt = GeneticOptimizer::new(4, 30, cfg).expect("valid config");
        let outcome = opt.run(plus_count_fitness);
        assert!(
            outcome.improvement() > 0.0,
            "GA should improve fitness, history = {:?}",
            outcome.history
        );
        assert_eq!(outcome.history.len(), 16);
        assert!(outcome.best_fitness >= outcome.history[0]);
        assert_eq!(outcome.best_fitness, plus_count_fitness(&outcome.best));
    }

    #[test]
    fn history_is_monotone_with_elitism() {
        let opt = GeneticOptimizer::new(4, 20, GeneticConfig::quick()).expect("valid config");
        let outcome = opt.run(plus_count_fitness);
        for w in outcome.history.windows(2) {
            assert!(
                w[1] >= w[0],
                "elitism guarantees non-decreasing best fitness"
            );
        }
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let opt = GeneticOptimizer::new(4, 20, GeneticConfig::quick()).expect("valid config");
        let a = opt.run(plus_count_fitness);
        let b = opt.run(plus_count_fitness);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn batched_run_matches_per_candidate_run() {
        let opt = GeneticOptimizer::new(4, 30, GeneticConfig::quick()).expect("valid config");
        let reference = opt.run(plus_count_fitness);
        let mut batch_sizes = Vec::new();
        let batched = opt.run_batched(|candidates| {
            batch_sizes.push(candidates.len());
            candidates.iter().map(plus_count_fitness).collect()
        });
        assert_eq!(batched.best, reference.best);
        assert_eq!(batched.history, reference.history);
        assert_eq!(batched.evaluations, reference.evaluations);
        // Generation 0 scores the whole population in one batch; every later
        // generation scores all non-elite offspring together — the batch
        // boundary parallel trainers fan out over.
        let cfg = GeneticConfig::quick();
        assert_eq!(batch_sizes[0], cfg.population);
        assert_eq!(batch_sizes.len(), cfg.generations + 1);
        for &size in &batch_sizes[1..] {
            assert_eq!(size, cfg.population - cfg.elitism);
        }
    }

    #[test]
    #[should_panic(expected = "score every candidate")]
    fn short_batch_scores_are_rejected() {
        let opt = GeneticOptimizer::new(2, 10, GeneticConfig::quick()).expect("valid config");
        opt.run_batched(|_| vec![]);
    }

    #[test]
    fn evaluation_count_matches_population_times_generations() {
        let cfg = GeneticConfig::quick();
        let opt = GeneticOptimizer::new(2, 10, cfg).expect("valid config");
        let outcome = opt.run(plus_count_fitness);
        let expected = cfg.population + cfg.generations * (cfg.population - cfg.elitism);
        assert_eq!(outcome.evaluations, expected);
    }
}
