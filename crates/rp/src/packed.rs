//! 2-bit packed representation of the projection matrix.
//!
//! Section III-B of the paper: because the matrix entries only take the
//! values {+1, 0, −1}, each entry can be coded on two bits, so the stored
//! matrix occupies a quarter of the memory of an 8-bit-per-entry layout. On a
//! platform with 96 KB of RAM this matters: an unpacked 32 × 200 matrix is
//! 6.4 KB, the packed form only 1.6 KB.
//!
//! The encoding used here is `00 → 0`, `01 → +1`, `10 → −1` (`11` is unused
//! and decodes to 0), packed four entries per byte, row-major.

use crate::achlioptas::{AchlioptasMatrix, ProjectionEntry};
use crate::bitplanes::BitPlanes;
use crate::{Result, RpError};

/// A projection matrix stored at two bits per entry.
///
/// The 2-bit byte stream ([`Self::as_bytes`] / [`Self::from_bytes`]) is the
/// canonical serialised form — it is what the firmware image stores. On
/// construction the matrix is additionally converted to a bit-sliced
/// [`BitPlanes`] working set so [`Self::project_i32`] runs the word-at-a-time
/// kernel instead of decoding one 2-bit entry at a time.
///
/// ```
/// use hbc_rp::{AchlioptasMatrix, PackedProjection};
///
/// let dense = AchlioptasMatrix::generate(8, 200, 7);
/// let packed = PackedProjection::from_matrix(&dense);
/// assert_eq!(packed.size_bytes(), 8 * 200 / 4);
/// assert_eq!(packed.to_matrix(), dense);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedProjection {
    data: Vec<u8>,
    planes: BitPlanes,
    rows: usize,
    cols: usize,
}

impl PackedProjection {
    /// Packs a dense matrix into the 2-bit representation.
    pub fn from_matrix(matrix: &AchlioptasMatrix) -> Self {
        let rows = matrix.rows();
        let cols = matrix.cols();
        let total = rows * cols;
        let mut data = vec![0u8; total.div_ceil(4)];
        for (i, e) in matrix.entries().iter().enumerate() {
            let code: u8 = match e {
                ProjectionEntry::Zero => 0b00,
                ProjectionEntry::Plus => 0b01,
                ProjectionEntry::Minus => 0b10,
            };
            data[i / 4] |= code << ((i % 4) * 2);
        }
        let planes = BitPlanes::from_matrix(matrix);
        PackedProjection {
            data,
            planes,
            rows,
            cols,
        }
    }

    /// Reconstructs the dense matrix (used for verification and by the PC-side
    /// tooling; the embedded code path projects directly from the packed
    /// form).
    pub fn to_matrix(&self) -> AchlioptasMatrix {
        let entries = (0..self.rows * self.cols)
            .map(|i| self.entry_at(i))
            .collect();
        AchlioptasMatrix::from_entries(self.rows, self.cols, entries)
            .expect("packed data always has rows*cols entries")
    }

    fn entry_at(&self, i: usize) -> ProjectionEntry {
        let code = (self.data[i / 4] >> ((i % 4) * 2)) & 0b11;
        match code {
            0b01 => ProjectionEntry::Plus,
            0b10 => ProjectionEntry::Minus,
            _ => ProjectionEntry::Zero,
        }
    }

    /// Number of projected coefficients (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input dimensionality (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn entry(&self, row: usize, col: usize) -> ProjectionEntry {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.entry_at(row * self.cols + col)
    }

    /// Memory footprint of the packed matrix in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Memory footprint of the equivalent 8-bit-per-entry matrix in bytes.
    pub fn unpacked_size_bytes(&self) -> usize {
        self.rows * self.cols
    }

    /// Raw packed bytes (what would be burned into the WBSN firmware image).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Rebuilds a packed projection from raw bytes and its dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`RpError::Dimension`] when the byte count does not match
    /// `ceil(rows*cols/4)` or a dimension is zero.
    pub fn from_bytes(rows: usize, cols: usize, data: Vec<u8>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(RpError::Dimension("dimensions must be non-zero".into()));
        }
        let expected = (rows * cols).div_ceil(4);
        if data.len() != expected {
            return Err(RpError::Dimension(format!(
                "expected {expected} packed bytes for a {rows}x{cols} matrix, got {}",
                data.len()
            )));
        }
        let planes = BitPlanes::from_packed_bytes(rows, cols, &data);
        Ok(PackedProjection {
            data,
            planes,
            rows,
            cols,
        })
    }

    /// The bit-sliced working set derived from the packed bytes.
    pub fn planes(&self) -> &BitPlanes {
        &self.planes
    }

    /// Projects an integer sample window through the bit-sliced kernel
    /// (additions/subtractions only, one coefficient per matrix row).
    ///
    /// Allocates the output vector; the hot paths reuse a buffer via
    /// [`Self::project_into`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`RpError::Dimension`] when the input length does not match the
    /// matrix width.
    pub fn project_i32(&self, input: &[i32]) -> Result<Vec<i32>> {
        let mut out = vec![0i32; self.rows];
        self.project_into(input, &mut out)?;
        Ok(out)
    }

    /// Allocation-free projection: writes one coefficient per row into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`RpError::Dimension`] when `input.len() != cols()` or
    /// `out.len() != rows()`.
    pub fn project_into(&self, input: &[i32], out: &mut [i32]) -> Result<()> {
        self.planes.project_into(input, out)
    }

    /// Reference scalar path: decodes one 2-bit entry at a time, exactly as
    /// the embedded firmware does (no unpacking buffer, a branch per entry).
    ///
    /// Kept as the firmware-faithful model for the cycle estimates and as the
    /// equivalence oracle the bit-sliced kernel is tested and benchmarked
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`RpError::Dimension`] when the input length does not match the
    /// matrix width.
    pub fn project_i32_scalar(&self, input: &[i32]) -> Result<Vec<i32>> {
        if input.len() != self.cols {
            return Err(RpError::Dimension(format!(
                "input has {} samples but the projection expects {}",
                input.len(),
                self.cols
            )));
        }
        let mut out = vec![0i32; self.rows];
        for (r, acc) in out.iter_mut().enumerate() {
            let base = r * self.cols;
            let mut sum = 0i64;
            for (c, &x) in input.iter().enumerate() {
                match self.entry_at(base + c) {
                    ProjectionEntry::Plus => sum += x as i64,
                    ProjectionEntry::Minus => sum -= x as i64,
                    ProjectionEntry::Zero => {}
                }
            }
            *acc = sum.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        }
        Ok(out)
    }
}

impl From<&AchlioptasMatrix> for PackedProjection {
    fn from(m: &AchlioptasMatrix) -> Self {
        PackedProjection::from_matrix(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for seed in 0..5 {
            let dense = AchlioptasMatrix::generate(8, 50, seed);
            let packed = PackedProjection::from_matrix(&dense);
            assert_eq!(packed.to_matrix(), dense);
        }
    }

    #[test]
    fn packed_size_is_quarter_of_unpacked() {
        let dense = AchlioptasMatrix::generate(32, 200, 3);
        let packed = PackedProjection::from_matrix(&dense);
        assert_eq!(packed.unpacked_size_bytes(), 6400);
        assert_eq!(packed.size_bytes(), 1600);
        // Paper: 8 coefficients, 50 samples -> 100 bytes packed.
        let small = PackedProjection::from_matrix(&AchlioptasMatrix::generate(8, 50, 3));
        assert_eq!(small.size_bytes(), 100);
    }

    #[test]
    fn packed_projection_matches_dense_projection() {
        let dense = AchlioptasMatrix::generate(16, 50, 21);
        let packed = PackedProjection::from_matrix(&dense);
        let input: Vec<i32> = (0..50).map(|i| (i * 37 % 211) - 100).collect();
        assert_eq!(
            packed.project_i32(&input).expect("dims ok"),
            dense.project_i32(&input).expect("dims ok")
        );
    }

    #[test]
    fn bytes_roundtrip_and_validation() {
        let dense = AchlioptasMatrix::generate(8, 50, 5);
        let packed = PackedProjection::from_matrix(&dense);
        let rebuilt =
            PackedProjection::from_bytes(8, 50, packed.as_bytes().to_vec()).expect("valid bytes");
        assert_eq!(rebuilt, packed);
        assert!(PackedProjection::from_bytes(8, 50, vec![0; 99]).is_err());
        assert!(PackedProjection::from_bytes(0, 50, vec![]).is_err());
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let packed = PackedProjection::from_matrix(&AchlioptasMatrix::generate(4, 10, 1));
        assert!(packed.project_i32(&[0; 9]).is_err());
        assert!(packed.project_i32_scalar(&[0; 9]).is_err());
        let mut out = vec![0i32; 3];
        assert!(packed.project_into(&[0; 10], &mut out).is_err());
    }

    #[test]
    fn bitsliced_scalar_and_buffered_paths_agree() {
        let dense = AchlioptasMatrix::generate(16, 50, 33);
        let packed = PackedProjection::from_matrix(&dense);
        let input: Vec<i32> = (0..50).map(|i| (i * 91 % 409) - 200).collect();
        let fast = packed.project_i32(&input).expect("dims ok");
        assert_eq!(fast, packed.project_i32_scalar(&input).expect("dims ok"));
        let mut out = vec![0i32; 16];
        packed.project_into(&input, &mut out).expect("dims ok");
        assert_eq!(fast, out);
        assert_eq!(packed.planes().rows(), 16);
    }

    #[test]
    fn from_bytes_rebuilds_the_bitplanes() {
        let dense = AchlioptasMatrix::generate(8, 70, 13);
        let packed = PackedProjection::from_matrix(&dense);
        let rebuilt =
            PackedProjection::from_bytes(8, 70, packed.as_bytes().to_vec()).expect("valid bytes");
        let input: Vec<i32> = (0..70).map(|i| i * 17 - 500).collect();
        assert_eq!(
            rebuilt.project_i32(&input).expect("dims ok"),
            dense.project_i32(&input).expect("dims ok")
        );
    }

    #[test]
    fn entry_accessor_agrees_with_dense() {
        let dense = AchlioptasMatrix::generate(5, 17, 8); // non-multiple-of-4 total
        let packed = PackedProjection::from_matrix(&dense);
        for r in 0..5 {
            for c in 0..17 {
                assert_eq!(packed.entry(r, c), dense.entry(r, c));
            }
        }
    }
}
