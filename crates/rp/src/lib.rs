//! # hbc-rp — Achlioptas random projections and their optimisation
//!
//! Random projections (RPs) reduce the dimensionality of the heartbeat
//! representation before classification: a beat window of `d` samples is
//! mapped to `k ≪ d` coefficients by `u = P·v`, where `P` is a sparse
//! `k × d` matrix whose entries are drawn from the Achlioptas distribution
//! (+1 with probability 1/6, −1 with probability 1/6, 0 with probability 2/3).
//! The Johnson–Lindenstrauss lemma bounds the distortion such a projection
//! introduces, and because the entries are ternary the projection needs no
//! multiplications — only additions and subtractions — which is what makes it
//! attractive for a WBSN.
//!
//! This crate provides:
//!
//! * [`AchlioptasMatrix`] — generation and application (floating point and
//!   integer) of the projection;
//! * [`PackedProjection`](packed::PackedProjection) — the 2-bit-per-entry
//!   memory layout used on the embedded platform (¼ of the memory of a byte
//!   matrix, Section III-B of the paper);
//! * [`BitPlanes`](bitplanes::BitPlanes) — the bit-sliced (two `u64` masks
//!   per row) working set derived from the packed form, powering the
//!   branch-free host-side projection kernel;
//! * [`genetic`] — the genetic algorithm used to search for a
//!   high-performance projection (population of 20 matrices, 30 generations
//!   in the paper);
//! * [`jl`] — utilities to measure empirical pairwise-distance distortion and
//!   compare it against the Johnson–Lindenstrauss bound.
//!
//! ```
//! use hbc_rp::AchlioptasMatrix;
//!
//! let p = AchlioptasMatrix::generate(8, 200, 42);
//! let beat = vec![0.5_f64; 200];
//! let coeffs = p.project(&beat);
//! assert_eq!(coeffs.len(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod achlioptas;
pub mod bitplanes;
pub mod genetic;
pub mod jl;
pub mod packed;

pub use achlioptas::{AchlioptasMatrix, ProjectionEntry};
pub use bitplanes::BitPlanes;
pub use genetic::{GeneticConfig, GeneticOptimizer, GeneticOutcome};
pub use packed::PackedProjection;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpError {
    /// The projection dimensions are invalid (zero rows/columns, or an input
    /// vector whose length does not match the matrix).
    Dimension(String),
    /// The genetic optimiser was configured with unusable parameters.
    Config(String),
}

impl std::fmt::Display for RpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpError::Dimension(m) => write!(f, "dimension mismatch: {m}"),
            RpError::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for RpError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, RpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        assert!(RpError::Dimension("8 vs 16".into())
            .to_string()
            .contains("8 vs 16"));
        assert!(RpError::Config("empty population".into())
            .to_string()
            .contains("population"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RpError>();
    }
}
