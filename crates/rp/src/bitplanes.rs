//! Bit-sliced (SWAR) form of the ternary projection matrix.
//!
//! The 2-bit packed layout of [`crate::packed`] is the *storage* format the
//! paper motivates (¼ of the memory of a byte matrix, Section III-B), but
//! projecting straight from it costs a shift, a mask and a three-way branch
//! per matrix entry — two thirds of which hit the `Zero` arm and contribute
//! nothing. This module stores each row as two *bitplanes* instead: one
//! `u64`-packed mask of the `+1` columns and one of the `−1` columns. The
//! projection kernel then walks whole 64-column words, visiting only the set
//! bits (`trailing_zeros` + clear-lowest-bit), so the per-entry decode branch
//! disappears and the ~2/3 zero entries cost nothing at all.
//!
//! The bitplanes are a *derived* representation: the canonical serialised
//! form remains the 2-bit byte stream of
//! [`PackedProjection`](crate::PackedProjection), which builds its planes on
//! construction. Keeping the two representations separate means the firmware
//! image format is untouched while every host-side projection goes through
//! the fast kernel.

use crate::achlioptas::{AchlioptasMatrix, ProjectionEntry};
use crate::{Result, RpError};

/// Number of columns covered by one plane word.
const WORD_BITS: usize = 64;

/// A `rows × cols` ternary matrix stored as two bitplanes per row.
///
/// Word `w` of row `r`'s plus-plane has bit `b` set iff entry
/// `(r, w*64 + b)` is `+1` (and likewise for the minus-plane and `−1`).
/// Bits at or beyond `cols` in the tail word are always zero, so kernels can
/// trust the masks without re-checking column bounds.
///
/// ```
/// use hbc_rp::{AchlioptasMatrix, BitPlanes};
///
/// let dense = AchlioptasMatrix::generate(8, 50, 7);
/// let planes = BitPlanes::from_matrix(&dense);
/// let input: Vec<i32> = (0..50).collect();
/// let mut out = vec![0i32; 8];
/// planes.project_into(&input, &mut out).expect("dims match");
/// assert_eq!(out, dense.project_i32(&input).expect("dims match"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPlanes {
    /// `+1` masks, `words_per_row` words per row, row-major.
    plus: Vec<u64>,
    /// `−1` masks, same layout.
    minus: Vec<u64>,
    rows: usize,
    cols: usize,
    words_per_row: usize,
}

impl BitPlanes {
    /// Builds the bitplanes of a dense matrix.
    pub fn from_matrix(matrix: &AchlioptasMatrix) -> Self {
        Self::from_entry_fn(matrix.rows(), matrix.cols(), |i| matrix.entries()[i])
    }

    /// Builds the bitplanes from the 2-bit packed byte stream (four entries
    /// per byte, row-major; `00 → 0`, `01 → +1`, `10 → −1`, `11 → 0`).
    ///
    /// The caller guarantees `data.len() == ceil(rows*cols/4)`; spare 2-bit
    /// codes in the final byte are ignored, exactly as the scalar decoder
    /// ignores them.
    pub(crate) fn from_packed_bytes(rows: usize, cols: usize, data: &[u8]) -> Self {
        Self::from_entry_fn(rows, cols, |i| {
            match (data[i / 4] >> ((i % 4) * 2)) & 0b11 {
                0b01 => ProjectionEntry::Plus,
                0b10 => ProjectionEntry::Minus,
                _ => ProjectionEntry::Zero,
            }
        })
    }

    /// Shared constructor: `entry(i)` returns the row-major entry `i`.
    fn from_entry_fn(rows: usize, cols: usize, entry: impl Fn(usize) -> ProjectionEntry) -> Self {
        assert!(rows > 0 && cols > 0, "bitplane dimensions must be non-zero");
        let words_per_row = cols.div_ceil(WORD_BITS);
        let mut plus = vec![0u64; rows * words_per_row];
        let mut minus = vec![0u64; rows * words_per_row];
        for r in 0..rows {
            for c in 0..cols {
                let word = r * words_per_row + c / WORD_BITS;
                let bit = 1u64 << (c % WORD_BITS);
                match entry(r * cols + c) {
                    ProjectionEntry::Plus => plus[word] |= bit,
                    ProjectionEntry::Minus => minus[word] |= bit,
                    ProjectionEntry::Zero => {}
                }
            }
        }
        BitPlanes {
            plus,
            minus,
            rows,
            cols,
            words_per_row,
        }
    }

    /// Number of projected coefficients (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input dimensionality (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of `u64` words covering one row in each plane.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The `(plus, minus)` plane words of one row.
    ///
    /// # Panics
    ///
    /// Panics when `row >= rows()`.
    pub fn row_planes(&self, row: usize) -> (&[u64], &[u64]) {
        assert!(row < self.rows, "row out of range");
        let span = row * self.words_per_row..(row + 1) * self.words_per_row;
        (&self.plus[span.clone()], &self.minus[span])
    }

    /// Memory footprint of both planes in bytes (host-side working set; the
    /// serialised firmware image keeps the 2-bit packed form).
    pub fn size_bytes(&self) -> usize {
        (self.plus.len() + self.minus.len()) * std::mem::size_of::<u64>()
    }

    /// Projects an integer sample window with the bit-sliced kernel, writing
    /// one coefficient per row into `out`.
    ///
    /// Accumulation happens in 64 bits and each coefficient saturates to the
    /// `i32` range, matching the dense and scalar-packed reference paths
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`RpError::Dimension`] when `input.len() != cols()` or
    /// `out.len() != rows()`.
    pub fn project_into(&self, input: &[i32], out: &mut [i32]) -> Result<()> {
        if input.len() != self.cols {
            return Err(RpError::Dimension(format!(
                "input has {} samples but the projection expects {}",
                input.len(),
                self.cols
            )));
        }
        if out.len() != self.rows {
            return Err(RpError::Dimension(format!(
                "output has {} slots but the projection produces {}",
                out.len(),
                self.rows
            )));
        }
        for (r, acc) in out.iter_mut().enumerate() {
            let span = r * self.words_per_row..(r + 1) * self.words_per_row;
            let mut sum = 0i64;
            for (w, (&p, &m)) in self.plus[span.clone()]
                .iter()
                .zip(&self.minus[span])
                .enumerate()
            {
                let window = &input[w * WORD_BITS..];
                let mut bits = p;
                while bits != 0 {
                    sum += window[bits.trailing_zeros() as usize] as i64;
                    bits &= bits - 1;
                }
                let mut bits = m;
                while bits != 0 {
                    sum -= window[bits.trailing_zeros() as usize] as i64;
                    bits &= bits - 1;
                }
            }
            *acc = sum.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planes_match_dense_projection_across_widths() {
        // Widths straddling the 64-column word boundary exercise the tail
        // mask; 64 and 128 exercise the exact-multiple case.
        for cols in [1usize, 7, 50, 63, 64, 65, 127, 128, 130, 200] {
            let dense = AchlioptasMatrix::generate(9, cols, cols as u64);
            let planes = BitPlanes::from_matrix(&dense);
            let input: Vec<i32> = (0..cols as i32).map(|i| (i * 37 % 211) - 100).collect();
            let mut out = vec![0i32; 9];
            planes.project_into(&input, &mut out).expect("dims match");
            assert_eq!(
                out,
                dense.project_i32(&input).expect("dims match"),
                "cols={cols}"
            );
        }
    }

    #[test]
    fn tail_word_bits_beyond_cols_are_zero() {
        let dense = AchlioptasMatrix::generate(4, 70, 3);
        let planes = BitPlanes::from_matrix(&dense);
        assert_eq!(planes.words_per_row(), 2);
        for r in 0..4 {
            let (p, m) = planes.row_planes(r);
            let tail_mask = !((1u64 << (70 - 64)) - 1);
            assert_eq!(p[1] & tail_mask, 0);
            assert_eq!(m[1] & tail_mask, 0);
        }
    }

    #[test]
    fn saturating_inputs_clamp_like_the_dense_path() {
        let dense = AchlioptasMatrix::generate(6, 80, 11);
        let planes = BitPlanes::from_matrix(&dense);
        let input: Vec<i32> = (0..80)
            .map(|i| if i % 2 == 0 { i32::MAX } else { i32::MIN })
            .collect();
        let mut out = vec![0i32; 6];
        planes.project_into(&input, &mut out).expect("dims match");
        assert_eq!(out, dense.project_i32(&input).expect("dims match"));
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let planes = BitPlanes::from_matrix(&AchlioptasMatrix::generate(4, 10, 1));
        let mut out = vec![0i32; 4];
        assert!(planes.project_into(&[0; 9], &mut out).is_err());
        let mut short = vec![0i32; 3];
        assert!(planes.project_into(&[0; 10], &mut short).is_err());
        assert_eq!(planes.rows(), 4);
        assert_eq!(planes.cols(), 10);
        assert_eq!(planes.size_bytes(), 4 * 2 * 8);
    }
}
