//! Achlioptas (database-friendly) random projection matrices.
//!
//! Achlioptas showed that a Johnson–Lindenstrauss embedding can be realised by
//! a matrix whose entries take only the values {+1, 0, −1} with probabilities
//! {1/6, 2/3, 1/6}. The paper uses exactly this construction (Section III-A):
//! each row of the matrix tells which input samples are added or subtracted to
//! form one projected coefficient, so the projection costs only integer
//! additions — ideal for the WBSN's integer-only arithmetic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Result, RpError};

/// A single ternary entry of the projection matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProjectionEntry {
    /// The corresponding sample is ignored (probability 2/3).
    #[default]
    Zero,
    /// The corresponding sample is added (probability 1/6).
    Plus,
    /// The corresponding sample is subtracted (probability 1/6).
    Minus,
}

impl ProjectionEntry {
    /// Signed value of the entry (+1, 0 or −1).
    pub fn value(self) -> i32 {
        match self {
            ProjectionEntry::Zero => 0,
            ProjectionEntry::Plus => 1,
            ProjectionEntry::Minus => -1,
        }
    }

    /// Builds an entry from a signed value.
    ///
    /// Any positive value maps to [`ProjectionEntry::Plus`], any negative
    /// value to [`ProjectionEntry::Minus`] and zero to
    /// [`ProjectionEntry::Zero`].
    pub fn from_value(v: i32) -> Self {
        match v.signum() {
            1 => ProjectionEntry::Plus,
            -1 => ProjectionEntry::Minus,
            _ => ProjectionEntry::Zero,
        }
    }

    /// Draws an entry from the Achlioptas distribution (+1 w.p. 1/6, −1 w.p.
    /// 1/6, 0 w.p. 2/3).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        match rng.gen_range(0..6u8) {
            0 => ProjectionEntry::Plus,
            1 => ProjectionEntry::Minus,
            _ => ProjectionEntry::Zero,
        }
    }
}

/// A dense `k × d` Achlioptas projection matrix.
///
/// `k` is the number of projected coefficients fed to the classifier (8, 16 or
/// 32 in the paper's experiments) and `d` the number of samples in the beat
/// window (200 at 360 Hz, 50 after 4× downsampling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AchlioptasMatrix {
    entries: Vec<ProjectionEntry>,
    rows: usize,
    cols: usize,
}

impl AchlioptasMatrix {
    /// Generates a `rows × cols` matrix from the Achlioptas distribution,
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn generate(rows: usize, cols: usize, seed: u64) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "projection dimensions must be non-zero"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        Self::generate_with(rows, cols, &mut rng)
    }

    /// Generates a matrix drawing entries from the provided RNG (used by the
    /// genetic optimiser, which owns the RNG).
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn generate_with<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "projection dimensions must be non-zero"
        );
        let entries = (0..rows * cols)
            .map(|_| ProjectionEntry::sample(rng))
            .collect();
        AchlioptasMatrix {
            entries,
            rows,
            cols,
        }
    }

    /// Builds a matrix from explicit entries in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`RpError::Dimension`] when `entries.len() != rows * cols` or a
    /// dimension is zero.
    pub fn from_entries(rows: usize, cols: usize, entries: Vec<ProjectionEntry>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(RpError::Dimension("dimensions must be non-zero".into()));
        }
        if entries.len() != rows * cols {
            return Err(RpError::Dimension(format!(
                "expected {} entries for a {rows}x{cols} matrix, got {}",
                rows * cols,
                entries.len()
            )));
        }
        Ok(AchlioptasMatrix {
            entries,
            rows,
            cols,
        })
    }

    /// Number of projected coefficients (rows, `k`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input dimensionality (columns, `d`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn entry(&self, row: usize, col: usize) -> ProjectionEntry {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.entries[row * self.cols + col]
    }

    /// Mutable access to an entry (used by the genetic mutation operator).
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn entry_mut(&mut self, row: usize, col: usize) -> &mut ProjectionEntry {
        assert!(row < self.rows && col < self.cols, "index out of range");
        &mut self.entries[row * self.cols + col]
    }

    /// Row-major view of all entries.
    pub fn entries(&self) -> &[ProjectionEntry] {
        &self.entries
    }

    /// One row of the matrix.
    ///
    /// # Panics
    ///
    /// Panics when `row >= rows()`.
    pub fn row(&self, row: usize) -> &[ProjectionEntry] {
        assert!(row < self.rows, "row out of range");
        &self.entries[row * self.cols..(row + 1) * self.cols]
    }

    /// Fraction of non-zero entries (expected ≈ 1/3 for a fresh Achlioptas
    /// draw).
    pub fn density(&self) -> f64 {
        let nz = self
            .entries
            .iter()
            .filter(|e| !matches!(e, ProjectionEntry::Zero))
            .count();
        nz as f64 / self.entries.len() as f64
    }

    /// Projects a floating-point input vector: `u = P·v`.
    ///
    /// # Panics
    ///
    /// Panics when `input.len() != cols()`; use [`Self::try_project`] for a
    /// fallible variant.
    pub fn project(&self, input: &[f64]) -> Vec<f64> {
        self.try_project(input)
            .expect("input length must equal cols()")
    }

    /// Fallible floating-point projection.
    ///
    /// # Errors
    ///
    /// Returns [`RpError::Dimension`] when the input length does not match the
    /// matrix width.
    pub fn try_project(&self, input: &[f64]) -> Result<Vec<f64>> {
        if input.len() != self.cols {
            return Err(RpError::Dimension(format!(
                "input has {} samples but the projection expects {}",
                input.len(),
                self.cols
            )));
        }
        let mut out = vec![0.0; self.rows];
        for (r, acc) in out.iter_mut().enumerate() {
            let row = &self.entries[r * self.cols..(r + 1) * self.cols];
            let mut sum = 0.0;
            for (e, &x) in row.iter().zip(input) {
                match e {
                    ProjectionEntry::Plus => sum += x,
                    ProjectionEntry::Minus => sum -= x,
                    ProjectionEntry::Zero => {}
                }
            }
            *acc = sum;
        }
        Ok(out)
    }

    /// Integer projection, as executed on the WBSN (additions and
    /// subtractions only, 32-bit accumulation).
    ///
    /// # Errors
    ///
    /// Returns [`RpError::Dimension`] when the input length does not match the
    /// matrix width.
    pub fn project_i32(&self, input: &[i32]) -> Result<Vec<i32>> {
        if input.len() != self.cols {
            return Err(RpError::Dimension(format!(
                "input has {} samples but the projection expects {}",
                input.len(),
                self.cols
            )));
        }
        let mut out = vec![0i32; self.rows];
        for (r, acc) in out.iter_mut().enumerate() {
            let row = &self.entries[r * self.cols..(r + 1) * self.cols];
            let mut sum = 0i64;
            for (e, &x) in row.iter().zip(input) {
                match e {
                    ProjectionEntry::Plus => sum += x as i64,
                    ProjectionEntry::Minus => sum -= x as i64,
                    ProjectionEntry::Zero => {}
                }
            }
            *acc = sum.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        }
        Ok(out)
    }

    /// Returns a copy of the matrix restricted to every `factor`-th column,
    /// matching a downsampled input window (Section III-B: downsampling the
    /// acquisition also shrinks the stored matrix).
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn downsample_columns(&self, factor: usize) -> AchlioptasMatrix {
        assert!(factor > 0, "downsampling factor must be non-zero");
        let kept: Vec<usize> = (0..self.cols).step_by(factor).collect();
        let mut entries = Vec::with_capacity(self.rows * kept.len());
        for r in 0..self.rows {
            for &c in &kept {
                entries.push(self.entry(r, c));
            }
        }
        AchlioptasMatrix {
            entries,
            rows: self.rows,
            cols: kept.len(),
        }
    }

    /// Number of additions/subtractions performed per projected beat — the
    /// work metric used by the platform cycle model.
    pub fn operations_per_projection(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !matches!(e, ProjectionEntry::Zero))
            .count()
    }

    /// Memory footprint in bytes when stored with one byte per entry.
    pub fn unpacked_size_bytes(&self) -> usize {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_value_roundtrip() {
        for e in [
            ProjectionEntry::Zero,
            ProjectionEntry::Plus,
            ProjectionEntry::Minus,
        ] {
            assert_eq!(ProjectionEntry::from_value(e.value()), e);
        }
        assert_eq!(ProjectionEntry::from_value(17), ProjectionEntry::Plus);
        assert_eq!(ProjectionEntry::from_value(-3), ProjectionEntry::Minus);
    }

    #[test]
    fn generation_is_deterministic_and_has_expected_density() {
        let a = AchlioptasMatrix::generate(16, 200, 1);
        let b = AchlioptasMatrix::generate(16, 200, 1);
        assert_eq!(a, b);
        let c = AchlioptasMatrix::generate(16, 200, 2);
        assert_ne!(a, c);
        // Density should be close to 1/3.
        assert!(
            (a.density() - 1.0 / 3.0).abs() < 0.05,
            "density {}",
            a.density()
        );
    }

    #[test]
    fn projection_matches_manual_computation() {
        use ProjectionEntry::{Minus, Plus, Zero};
        let m = AchlioptasMatrix::from_entries(2, 3, vec![Plus, Zero, Minus, Minus, Plus, Plus])
            .expect("valid entries");
        let out = m.project(&[1.0, 2.0, 3.0]);
        assert_eq!(out, vec![1.0 - 3.0, -1.0 + 2.0 + 3.0]);
        let outi = m.project_i32(&[1, 2, 3]).expect("dims ok");
        assert_eq!(outi, vec![-2, 4]);
    }

    #[test]
    fn integer_and_float_projection_agree() {
        let m = AchlioptasMatrix::generate(8, 50, 3);
        let input_i: Vec<i32> = (0..50).map(|i| (i * 13 % 101) - 50).collect();
        let input_f: Vec<f64> = input_i.iter().map(|&v| v as f64).collect();
        let pf = m.project(&input_f);
        let pi = m.project_i32(&input_i).expect("dims ok");
        for (f, i) in pf.iter().zip(&pi) {
            assert_eq!(*f, *i as f64);
        }
    }

    #[test]
    fn dimension_errors_are_reported() {
        let m = AchlioptasMatrix::generate(4, 10, 0);
        assert!(m.try_project(&[0.0; 9]).is_err());
        assert!(m.project_i32(&[0; 11]).is_err());
        assert!(AchlioptasMatrix::from_entries(2, 2, vec![ProjectionEntry::Zero; 3]).is_err());
        assert!(AchlioptasMatrix::from_entries(0, 2, vec![]).is_err());
    }

    #[test]
    fn downsampled_matrix_keeps_every_fourth_column() {
        let m = AchlioptasMatrix::generate(4, 200, 9);
        let d = m.downsample_columns(4);
        assert_eq!(d.rows(), 4);
        assert_eq!(d.cols(), 50);
        for r in 0..4 {
            for c in 0..50 {
                assert_eq!(d.entry(r, c), m.entry(r, c * 4));
            }
        }
        assert_eq!(d.unpacked_size_bytes(), 200);
    }

    #[test]
    fn operations_count_equals_nonzero_entries() {
        let m = AchlioptasMatrix::generate(8, 50, 11);
        let ops = m.operations_per_projection();
        let nz = m
            .entries()
            .iter()
            .filter(|e| !matches!(e, ProjectionEntry::Zero))
            .count();
        assert_eq!(ops, nz);
        assert!(ops > 0 && ops < 8 * 50);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_generation_panics() {
        AchlioptasMatrix::generate(0, 10, 0);
    }
}
