//! Johnson–Lindenstrauss distortion utilities.
//!
//! The theoretical appeal of random projections is the Johnson–Lindenstrauss
//! (JL) lemma: for `k ≥ 4 ln(n) / (ε²/2 − ε³/3)`, all pairwise distances of
//! `n` points are preserved within a factor `1 ± ε` with high probability.
//! Achlioptas proved the same guarantee holds for the sparse ternary matrices
//! used in the paper, with the projection scaled by `sqrt(3/k)`.
//!
//! These helpers quantify the *empirical* distortion a concrete projection
//! induces on a concrete beat set, which is how the paper motivates that a
//! small number of coefficients (8) is enough.

use crate::achlioptas::AchlioptasMatrix;

/// Scale factor that makes an Achlioptas projection an isometry in
/// expectation: `sqrt(3 / k)` where `k` is the number of rows.
pub fn achlioptas_scale(rows: usize) -> f64 {
    (3.0 / rows as f64).sqrt()
}

/// Minimum number of projected dimensions the JL lemma requires to preserve
/// pairwise distances of `n` points within `1 ± eps`.
///
/// # Panics
///
/// Panics if `eps` is not in `(0, 1)` or `n < 2`.
pub fn jl_minimum_dimensions(n: usize, eps: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    assert!(n >= 2, "need at least two points");
    let denom = eps * eps / 2.0 - eps * eps * eps / 3.0;
    (4.0 * (n as f64).ln() / denom).ceil() as usize
}

/// Summary of the pairwise-distance distortion of a projection on a point
/// set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistortionReport {
    /// Smallest observed ratio `‖Pu − Pv‖² / ‖u − v‖²` (after scaling).
    pub min_ratio: f64,
    /// Largest observed ratio.
    pub max_ratio: f64,
    /// Mean observed ratio (should be close to 1 for a JL embedding).
    pub mean_ratio: f64,
    /// Number of point pairs measured.
    pub pairs: usize,
}

impl DistortionReport {
    /// The maximum relative distortion `max(|min_ratio − 1|, |max_ratio − 1|)`.
    pub fn epsilon(&self) -> f64 {
        (1.0 - self.min_ratio)
            .abs()
            .max((self.max_ratio - 1.0).abs())
    }
}

/// Measures the pairwise squared-distance distortion of `matrix` (scaled by
/// [`achlioptas_scale`]) over `points`.
///
/// Pairs whose original distance is (numerically) zero are skipped. Returns
/// `None` when fewer than two distinct points are provided.
pub fn measure_distortion(
    matrix: &AchlioptasMatrix,
    points: &[Vec<f64>],
) -> Option<DistortionReport> {
    if points.len() < 2 {
        return None;
    }
    let scale = achlioptas_scale(matrix.rows());
    let projected: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            matrix
                .project(p)
                .into_iter()
                .map(|x| x * scale)
                .collect::<Vec<f64>>()
        })
        .collect();

    let mut min_ratio = f64::INFINITY;
    let mut max_ratio = f64::NEG_INFINITY;
    let mut sum_ratio = 0.0;
    let mut pairs = 0usize;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let orig = squared_distance(&points[i], &points[j]);
            if orig < 1e-12 {
                continue;
            }
            let proj = squared_distance(&projected[i], &projected[j]);
            let ratio = proj / orig;
            min_ratio = min_ratio.min(ratio);
            max_ratio = max_ratio.max(ratio);
            sum_ratio += ratio;
            pairs += 1;
        }
    }
    if pairs == 0 {
        return None;
    }
    Some(DistortionReport {
        min_ratio,
        max_ratio,
        mean_ratio: sum_ratio / pairs as f64,
        pairs,
    })
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
            .collect()
    }

    #[test]
    fn scale_factor_matches_achlioptas() {
        assert!((achlioptas_scale(3) - 1.0).abs() < 1e-12);
        assert!((achlioptas_scale(12) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jl_dimension_bound_behaves_monotonically() {
        let k1 = jl_minimum_dimensions(100, 0.3);
        let k2 = jl_minimum_dimensions(1000, 0.3);
        let k3 = jl_minimum_dimensions(1000, 0.1);
        assert!(k2 > k1, "more points need more dimensions");
        assert!(k3 > k2, "tighter epsilon needs more dimensions");
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn jl_bound_rejects_bad_epsilon() {
        jl_minimum_dimensions(10, 1.5);
    }

    #[test]
    fn mean_ratio_is_close_to_one_for_large_k() {
        // With k = 64 on 200-dimensional data the expected squared norm is
        // preserved; the mean over many pairs should concentrate near 1.
        let matrix = AchlioptasMatrix::generate(64, 200, 4);
        let points = random_points(20, 200, 9);
        let report = measure_distortion(&matrix, &points).expect("enough points");
        assert!(
            (report.mean_ratio - 1.0).abs() < 0.15,
            "mean ratio {} should concentrate near 1",
            report.mean_ratio
        );
        assert!(report.min_ratio > 0.0);
        assert!(report.max_ratio >= report.mean_ratio);
        assert_eq!(report.pairs, 20 * 19 / 2);
        assert!(report.epsilon() < 1.0);
    }

    #[test]
    fn more_coefficients_reduce_distortion_on_average() {
        let points = random_points(15, 200, 17);
        let mut eps_by_k = Vec::new();
        for &k in &[4usize, 16, 64] {
            // Average the worst-case distortion over several seeds to smooth
            // out projection-to-projection variance.
            let mut total = 0.0;
            for seed in 0..5 {
                let m = AchlioptasMatrix::generate(k, 200, seed);
                total += measure_distortion(&m, &points).expect("points").epsilon();
            }
            eps_by_k.push(total / 5.0);
        }
        assert!(
            eps_by_k[0] > eps_by_k[2],
            "distortion should shrink from k=4 ({}) to k=64 ({})",
            eps_by_k[0],
            eps_by_k[2]
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let m = AchlioptasMatrix::generate(8, 10, 0);
        assert!(measure_distortion(&m, &[]).is_none());
        assert!(measure_distortion(&m, &[vec![0.0; 10]]).is_none());
        // Identical points only -> no measurable pair.
        let same = vec![vec![1.0; 10], vec![1.0; 10]];
        assert!(measure_distortion(&m, &same).is_none());
    }
}
